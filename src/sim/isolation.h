// Process isolation for supervised sweep cells (POSIX fork/waitpid).
//
// The supervisor's in-process supervision is cooperative: a timeout only
// works if the simulation reaches its cancel poll, and nothing survives a
// SIGSEGV, a sanitizer abort or the kernel OOM killer — one bad cell takes
// the whole sweep with it. run_isolated closes that gap by running one
// cell's work in a forked child:
//
//   containment   the child can die any way it likes (signal, _exit,
//                 RLIMIT_CPU SIGKILL, kernel OOM kill); the parent decodes
//                 the waitpid status into a typed ChildOutcome and the
//                 sweep continues.
//   hard deadline the parent SIGKILLs the child when its wall-clock
//                 deadline expires — no cooperation from the child needed,
//                 so even a cell wedged in a `for(;;)` loop dies on time.
//   resource caps RLIMIT_AS / RLIMIT_CPU are applied inside the child
//                 before any work runs, so a runaway cell cannot take the
//                 host down with it.
//   fingerprint   a shared-memory heartbeat page carries the child's beat
//                 counter and coarse phase; on a crash the parent reads
//                 the last phase back as part of the crash fingerprint.
//
// Results cross a pipe as one length-prefixed frame (ChildFrame) written
// by the child immediately before _exit(0). The frame carries the cell's
// deterministic outcome JSON verbatim, so the parent can splice it into
// the merged report byte-identically to in-process execution.
//
// fork() happens on a worker thread of a multi-threaded pool; the child
// therefore only async-signal-safe-adjacent work between fork and the
// user callback (close/mmap bookkeeping, setrlimit), never locks shared
// mutexes from the parent, and always leaves via _exit so no parent-owned
// destructors or atexit handlers run twice.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

namespace moca::sim {

/// Coarse progress phases the child publishes through the heartbeat page;
/// the last one observed is half of the crash fingerprint.
enum class ChildPhase : std::uint8_t {
  kSpawned = 0,    // forked, callback not entered yet
  kRunning = 1,    // simulation executing
  kReporting = 2,  // simulation done, serializing/writing the frame
  kDone = 3,       // frame fully written, about to _exit(0)
};

/// Report spelling ("spawned", "running", "reporting", "done").
[[nodiscard]] std::string to_string(ChildPhase phase);

/// Caps applied to one isolated child. Zeros disable the respective cap.
struct IsolationLimits {
  /// Wall-clock deadline enforced by the parent via SIGKILL.
  double deadline_ms = 0.0;
  /// RLIMIT_AS ceiling applied inside the child before any work.
  std::uint64_t rlimit_as_bytes = 0;
  /// RLIMIT_CPU ceiling (seconds) applied inside the child.
  std::uint64_t rlimit_cpu_seconds = 0;
};

/// The one result frame a child writes to the pipe before exiting.
struct ChildFrame {
  enum class Kind : std::uint8_t {
    kOk = 0,         // outcome_json carries the finished cell
    kFailed = 1,     // permanent failure, error carries what()
    kRetryable = 2,  // RetryableError: the parent may re-spawn the cell
    kCancelled = 3,  // CancelledError (cooperative cancel inside the child)
    kOom = 4,        // std::bad_alloc: the memory cap was hit cleanly
  };
  Kind kind = Kind::kFailed;
  std::string error;         // failure text when kind != kOk
  std::string outcome_json;  // deterministic outcome JSON when kind == kOk
  std::uint64_t total_instructions = 0;  // host-side throughput stats
};

/// Decoded fate of one isolated child: how it ended, and the frame if one
/// arrived intact.
struct ChildOutcome {
  enum class Status : std::uint8_t {
    kDelivered,    // complete frame received and the child exited cleanly
    kCrashed,      // died by a signal of its own doing (SIGSEGV, abort,
                   // RLIMIT_CPU SIGKILL, kernel OOM kill, ...)
    kDeadline,     // parent SIGKILL: wall-clock deadline expired
    kInterrupted,  // parent SIGKILL: the sweep's interrupt flag was set
    kExited,       // exited nonzero without delivering a complete frame
  };
  Status status = Status::kExited;
  int exit_code = 0;  // WEXITSTATUS when the child exited
  int signal = 0;     // terminating signal when the child was signaled
  ChildPhase last_phase = ChildPhase::kSpawned;  // from the heartbeat page
  std::uint64_t beats = 0;  // heartbeat count at the end (host-timing-
                            // dependent: never serialized)
  ChildFrame frame;         // valid when status == kDelivered
};

/// Child-side view of the shared heartbeat page. Passed to the callback;
/// point SystemOptions::heartbeat at beats() and publish phases as work
/// progresses. The parent reads both fields after the child is gone.
class Heartbeat {
 public:
  explicit Heartbeat(void* page);

  /// Publishes the child's coarse phase (monotonic by convention).
  void set_phase(ChildPhase phase);

  /// The beat counter the simulation bumps at its cancel-poll cadence.
  [[nodiscard]] std::atomic<std::uint64_t>* beats();

 private:
  friend struct HeartbeatReader;
  void* page_;
};

/// Forks and runs `fn` in the child under `limits`, returning the decoded
/// outcome from the parent. `interrupt` (nullable) is polled while
/// waiting; when it becomes true the child is SIGKILLed and the outcome is
/// kInterrupted. The callback's returned frame is written to the pipe and
/// the child _exits 0; a callback that throws is reported as a kFailed
/// frame. Throws CheckError on host-level failures (pipe/fork/mmap).
[[nodiscard]] ChildOutcome run_isolated(
    const IsolationLimits& limits, const std::atomic<bool>* interrupt,
    const std::function<ChildFrame(Heartbeat&)>& fn);

}  // namespace moca::sim
