// Memory-system configurations (paper Sec. V-B/V-C and Sec. VI-C).
//
// Capacities are 1/4 of the paper's (kCapacityScale): the paper runs 1e9
// instructions per workload, we default to ~1e6, so footprints and module
// capacities are scaled together to preserve the capacity-pressure ratios
// that drive the Heter-App vs MOCA comparison (DESIGN.md §5). All ratios
// between modules are the paper's.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "dram/types.h"

namespace moca::sim {

/// Uniform capacity scale-down factor vs. the paper (see header comment).
inline constexpr std::uint64_t kCapacityScale = 4;

struct ModuleSpec {
  dram::MemKind kind = dram::MemKind::kDdr3;
  std::uint64_t capacity_bytes = 0;
  std::uint32_t attached_channels = 1;
  std::string name;
  /// Channel-interleave granule override; 0 keeps the device default
  /// (row-buffer granule, Table I's RoRaBaChCo).
  std::uint64_t interleave_granule_bytes = 0;
};

struct MemSystemConfig {
  std::string name;
  std::vector<ModuleSpec> modules;

  [[nodiscard]] std::uint64_t total_capacity() const {
    std::uint64_t total = 0;
    for (const ModuleSpec& m : modules) total += m.capacity_bytes;
    return total;
  }
};

/// Homogeneous baseline: one 2GB (paper-scale) module type on 4 channels.
[[nodiscard]] MemSystemConfig homogeneous(dram::MemKind kind);

/// Two-tier DDR4+HBM machine in the style of Intel Knights Landing
/// (Sec. II-A / VII-A): 1.5GB DDR3 on 3 channels + 512MB HBM on 1
/// (paper-scale values, scaled like everything else). Exercises MOCA on a
/// machine without RLDRAM/LPDDR: the preference chains degrade gracefully.
[[nodiscard]] MemSystemConfig knl_like();

/// Heterogeneous configurations of Sec. VI-C (paper-scale values):
///  1: 256MB RLDRAM + 768MB HBM + 2x512MB LPDDR2  (the paper's default)
///  2: 512MB RLDRAM + 512MB HBM + 2x512MB LPDDR2
///  3: 768MB RLDRAM + 768MB HBM +   512MB LPDDR2
[[nodiscard]] MemSystemConfig heterogeneous(int config_number);

}  // namespace moca::sim
