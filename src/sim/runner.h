// High-level experiment driver shared by benches, examples and tests:
// profile -> classify -> run under each memory system / policy.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "moca/classifier.h"
#include "moca/profile.h"
#include "os/policy.h"
#include "sim/observability.h"
#include "sim/system.h"
#include "workload/suite.h"

namespace moca::sim {

/// The six memory-system/policy combinations compared throughout Sec. VI.
enum class SystemChoice {
  kHomogenDdr3,
  kHomogenLpddr2,
  kHomogenRldram,
  kHomogenHbm,
  kHeterApp,  // heterogeneous machine + application-level allocation
  kMoca,      // heterogeneous machine + MOCA object-level allocation
};

[[nodiscard]] std::string to_string(SystemChoice choice);
[[nodiscard]] std::vector<SystemChoice> all_system_choices();

/// Shared experiment settings.
struct Experiment {
  std::uint64_t instructions = 1'000'000;
  /// Warm-up instructions before counters reset; 0 = derive from
  /// `instructions` (see effective_warmup).
  std::uint64_t warmup = 0;
  std::uint64_t train_seed = 0x7777;
  std::uint64_t ref_seed = 0x1234;
  double train_scale = 0.6;  // training inputs are smaller (Sec. V-D)
  double ref_scale = 1.0;
  core::Thresholds object_thresholds{1.0, 20.0};  // Sec. IV-C
  /// App-level intensity threshold for the Heter-App baseline / Table III.
  /// The paper does not state Phadke et al.'s cutoff; 5 MPKI reproduces
  /// Table III's app classes on this suite (DESIGN.md §6).
  core::Thresholds app_thresholds{5.0, 20.0};
  int hetero_config = 1;  // paper default (Sec. VI-C)
  /// Epoch sampling / phase tracing for the measured runs (profiling runs
  /// always leave it off). Carried through sweep jobs unchanged.
  ObservabilityOptions observability;
  /// Phase-adaptive reclassification engine for the measured runs
  /// (profiling runs never enable it: the offline profile must describe
  /// the application, not the engine's interventions). Parsed from
  /// --adaptive / MOCA_SIM_ADAPTIVE; nullopt = off.
  std::optional<core::AdaptiveConfig> adaptive;
  /// Deterministic fault plan armed for the measured runs (profiling runs
  /// stay fault-free so the classification db is stable). Stochastic
  /// clauses derive their streams from ref_seed; an empty plan costs
  /// nothing. Parsed from --fault-plan / MOCA_SIM_FAULTS.
  FaultPlan faults;
  /// Supervised-retry ordinal (0 = first try) gating `attempts=k` fault
  /// clauses; set per attempt by the sweep supervisor.
  std::uint32_t fault_attempt = 0;
  /// Sweep-cell index gating `cell=n` fault clauses; set by the sweep
  /// runner / supervisor (non-sweep runs stay at 0).
  std::uint64_t fault_cell = 0;
  /// Cooperative cancellation flag polled inside System::run; when it
  /// becomes true the run throws CancelledError. Null = never cancelled.
  /// Set by the supervisor's per-job watchdog, not by end users.
  const std::atomic<bool>* cancel = nullptr;
  /// Liveness heartbeat bumped at the same poll cadence as `cancel`; an
  /// isolated child points this into a shared page so the parent can tell
  /// "slow" from "wedged". Null = no heartbeat.
  std::atomic<std::uint64_t>* heartbeat = nullptr;

  /// Warm-up used by the runner: a quarter of the measured window, clamped
  /// to [20K, 250K] instructions — enough to fill the caches' resident
  /// working sets before measurement starts.
  [[nodiscard]] std::uint64_t effective_warmup() const {
    if (warmup != 0) return warmup;
    const std::uint64_t quarter = instructions / 4;
    return quarter < 20'000 ? 20'000
                            : (quarter > 250'000 ? 250'000 : quarter);
  }
};

/// Offline profiling stage: single core, homogeneous DDR3 baseline,
/// training input (Sec. IV-A/V-A).
[[nodiscard]] core::AppProfile profile_app(const workload::AppSpec& app,
                                           const Experiment& experiment);

/// Classification stage: object classes from object thresholds, app class
/// from app thresholds (the "instrumented binary").
[[nodiscard]] core::ClassifiedApp classify_for_runtime(
    const core::AppProfile& profile, const Experiment& experiment);

/// Profiles and classifies every app in `names` (dedup-safe).
[[nodiscard]] std::map<std::string, core::ClassifiedApp> build_profile_db(
    const std::vector<std::string>& names, const Experiment& experiment);

/// Builds the policy object for a choice.
[[nodiscard]] std::unique_ptr<os::AllocationPolicy> make_policy(
    SystemChoice choice);

/// Builds the memory system for a choice (homogeneous or the experiment's
/// heterogeneous config).
[[nodiscard]] MemSystemConfig memsys_for(SystemChoice choice,
                                         const Experiment& experiment);

/// Runs a workload (1..N apps on as many cores) under one system choice
/// with reference inputs.
[[nodiscard]] RunResult run_workload(
    const std::vector<std::string>& app_names, SystemChoice choice,
    const std::map<std::string, core::ClassifiedApp>& db,
    const Experiment& experiment);

/// Convenience: single-application run (Figs. 8/9).
[[nodiscard]] RunResult run_single(
    const std::string& app_name, SystemChoice choice,
    const std::map<std::string, core::ClassifiedApp>& db,
    const Experiment& experiment);

/// Dynamic-migration baseline (Sec. IV-E): the heterogeneous machine with
/// interleaved first-touch placement plus the epoch page-migration daemon
/// promoting hot pages into RLDRAM/HBM at runtime.
[[nodiscard]] RunResult run_workload_with_migration(
    const std::vector<std::string>& app_names, const Experiment& experiment,
    const os::MigrationConfig& migration);

}  // namespace moca::sim
