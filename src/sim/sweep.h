// Parallel sweep engine: runs independent (apps, SystemChoice, Experiment)
// jobs on a fixed-size worker pool.
//
// Every headline figure of the paper is a sweep — six system choices x many
// apps x config variants — and each (workload, system, experiment) cell is a
// self-contained simulation: the job builds its own System, EventQueue and
// RNG state from its Experiment seeds, so nothing is shared across threads
// and results are bit-identical for any worker count (docs/sweep.md).
//
// Results come back in submission order regardless of completion order, so
// callers can zip them against their job list. A job that throws is captured
// per-job (ok == false, error text set); the pool survives and the remaining
// jobs still run.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/runner.h"

namespace moca::sim {

/// One cell of a sweep: a workload (1..N apps, one per core) under one
/// system choice with one experiment configuration.
struct SweepJob {
  std::vector<std::string> apps;
  SystemChoice choice = SystemChoice::kHomogenDdr3;
  Experiment experiment;
  /// Optional caller tag carried through to the outcome (e.g. the workload
  /// set name); purely for labelling, never interpreted.
  std::string label;
};

/// Result of one job, in submission order.
struct SweepOutcome {
  /// Typed failure classification (docs/robustness.md). kNone for ok
  /// outcomes; the plain SweepRunner only produces kFailed, the
  /// SweepSupervisor adds kTimedOut (wall-clock watchdog fired) and
  /// kQuarantined (retryable error outlived the retry budget), and its
  /// process-isolated mode adds kCrashed (child died by signal),
  /// kOomKilled (child exhausted its memory cap) and kInterrupted (the
  /// sweep was stopped by SIGINT/SIGTERM before this cell could finish).
  enum class FailureKind : std::uint8_t {
    kNone,
    kFailed,
    kTimedOut,
    kQuarantined,
    kCrashed,
    kOomKilled,
    kInterrupted,
  };

  std::size_t job_id = 0;  // index into the submitted job list
  std::string label;
  bool ok = false;
  FailureKind kind = FailureKind::kNone;
  /// Attempts consumed (>= 2 only when the supervisor retried the job).
  std::uint32_t attempts = 1;
  std::string error;  // what() of the captured exception when !ok
  /// Crash fingerprint, populated only for kCrashed (and kOomKilled when
  /// the kernel's OOM killer delivered a signal): the terminating signal
  /// number plus the child's last heartbeat phase ("spawned", "running",
  /// "reporting", "done"). Deterministic for injected crashes.
  int crash_signal = 0;
  std::string crash_phase;
  /// Valid only when ok. Includes the job's observability payload
  /// (epoch time-series + trace events) when the experiment enabled it;
  /// like every simulated metric it is byte-identical for any worker
  /// count (docs/observability.md).
  RunResult result;
  /// Host-side observability (not part of the simulated metrics; excluded
  /// from determinism comparisons).
  double wall_ms = 0.0;
  double sim_instr_per_sec = 0.0;
  /// True when this cell was not re-run but recovered from a resume
  /// journal (supervised sweeps). Only job_id/label/ok/kind/attempts are
  /// populated then; the full result lives in the journal entry that the
  /// merged report splices back in. Never serialized.
  bool resumed = false;
};

/// Journal/report spelling of a FailureKind ("none", "failed",
/// "timed_out", "quarantined", "crashed", "oom_killed", "interrupted").
[[nodiscard]] std::string to_string(SweepOutcome::FailureKind kind);

/// Fixed-size worker pool executing sweep jobs concurrently.
class SweepRunner {
 public:
  /// workers == 0 resolves the pool size from the MOCA_SIM_JOBS environment
  /// variable, falling back to std::thread::hardware_concurrency().
  explicit SweepRunner(unsigned workers = 0);

  [[nodiscard]] unsigned workers() const { return workers_; }

  /// When set, one line per finished job (id, label, wall-clock ms,
  /// simulated instructions/sec) is written to `out`. The stream is locked
  /// internally; interleaving is line-atomic.
  void set_log(std::ostream* out) { log_ = out; }

  /// Runs every job and returns outcomes in submission order. `db` provides
  /// the classification each app runs under (see build_profile_db); apps
  /// missing from the db run unclassified, exactly like run_workload.
  [[nodiscard]] std::vector<SweepOutcome> run(
      const std::vector<SweepJob>& jobs,
      const std::map<std::string, core::ClassifiedApp>& db);

  /// Generic fan-out: applies `fn(i)` for i in [0, count) on the pool.
  /// Every slot runs even when some throw; after all slots finish, a
  /// single failure rethrows the original exception unchanged while
  /// multiple failures throw one CheckError aggregating every slot's
  /// error (slot index + message, in slot order). Building block for
  /// sweep-shaped work that is not a (apps, choice) cell, e.g. profiling.
  void for_each_index(std::size_t count,
                      const std::function<void(std::size_t)>& fn);

  /// Resolves the worker count the way the constructor does; exposed for
  /// CLI/bench flag handling (--jobs overrides, 0 = auto).
  [[nodiscard]] static unsigned resolve_workers(unsigned requested);

 private:
  unsigned workers_ = 1;
  std::ostream* log_ = nullptr;
};

/// Parallel profiling stage: profile_app + classify_for_runtime for every
/// distinct name in `names`, fanned out on `runner`. Deterministic: each
/// profile run derives its RNG state from the experiment's train seed and
/// the app name only, so the db is identical to the sequential
/// build_profile_db in runner.h.
[[nodiscard]] std::map<std::string, core::ClassifiedApp> build_profile_db(
    const std::vector<std::string>& names, const Experiment& experiment,
    SweepRunner& runner);

/// Convenience: the full (workloads x choices) cross product, row-major
/// (workload outer, choice inner), matching the figure harness loops.
[[nodiscard]] std::vector<SweepJob> cross_product(
    const std::vector<std::vector<std::string>>& workloads,
    const std::vector<SystemChoice>& choices, const Experiment& experiment);

}  // namespace moca::sim
