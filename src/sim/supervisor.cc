#include "sim/supervisor.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <csignal>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "sim/isolation.h"
#include "sim/report.h"
#include "sim/runner.h"

namespace moca::sim {
namespace {

using Clock = std::chrono::steady_clock;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             Clock::now().time_since_epoch())
      .count();
}

constexpr std::uint64_t kJournalVersion = 1;

/// Fixed line prefix every journal entry starts with; resume keys its
/// parser off this (the journal is always self-written, so the shape is
/// known exactly — no general JSON parser needed or present in the repo).
std::string journal_prefix() {
  return "{\"journal_version\":" + std::to_string(kJournalVersion) +
         ",\"fingerprint\":\"";
}

/// One finished cell, framed so a crash mid-write can only ever damage the
/// final line: {prefix}<fp>","cell":N,"outcome":{...}}
std::string journal_line(const std::string& fingerprint, std::size_t cell,
                         const std::string& outcome_json) {
  std::string line = journal_prefix();
  line += fingerprint;
  line += "\",\"cell\":";
  line += std::to_string(cell);
  line += ",\"outcome\":";
  line += outcome_json;
  line += '}';
  return line;
}

/// Pulls `"key":<token>` out of a self-written outcome object. Returns
/// false when the key is absent. Only used on journal entries this code
/// serialized itself, so a plain substring search is exact enough.
bool extract_token(const std::string& json, const std::string& key,
                   std::string& out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = json.find(needle);
  if (pos == std::string::npos) return false;
  std::size_t begin = pos + needle.size();
  std::size_t end = begin;
  if (begin < json.size() && json[begin] == '"') {
    ++begin;
    end = begin;
    while (end < json.size() && json[end] != '"') ++end;
  } else {
    while (end < json.size() && json[end] != ',' && json[end] != '}') ++end;
  }
  out = json.substr(begin, end - begin);
  return true;
}

}  // namespace

/// Single background thread tracking armed deadlines; fires by flipping
/// each job's cancellation flag (the simulation notices at its next
/// cooperative poll). One watchdog serves every concurrent worker: arm()
/// and disarm() are O(armed jobs), which is bounded by the pool size.
/// When an interrupt flag is configured the loop also polls it and fires
/// every armed entry the moment it goes true, so a SIGINT cancels running
/// cells instead of waiting out their deadlines.
class SweepSupervisor::Watchdog {
 public:
  explicit Watchdog(const std::atomic<bool>* interrupt = nullptr)
      : interrupt_(interrupt), thread_([this] { loop(); }) {}

  ~Watchdog() {
    {
      std::lock_guard lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  /// timeout_ms <= 0 arms with no deadline (interrupt-fire only).
  [[nodiscard]] std::uint64_t arm(std::atomic<bool>* flag, double timeout_ms) {
    const auto deadline =
        timeout_ms <= 0.0
            ? Clock::time_point::max()
            : Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double, std::milli>(
                                     timeout_ms));
    std::uint64_t id = 0;
    {
      std::lock_guard lock(mutex_);
      id = next_id_++;
      entries_.push_back(Entry{id, deadline, flag});
    }
    cv_.notify_all();
    return id;
  }

  void disarm(std::uint64_t id) {
    std::lock_guard lock(mutex_);
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].id == id) {
        entries_[i] = entries_.back();
        entries_.pop_back();
        return;
      }
    }
  }

 private:
  struct Entry {
    std::uint64_t id = 0;
    Clock::time_point deadline;
    std::atomic<bool>* flag = nullptr;
  };

  void loop() {
    std::unique_lock lock(mutex_);
    for (;;) {
      if (stop_) return;
      const auto now = Clock::now();
      const bool interrupted =
          interrupt_ != nullptr &&
          interrupt_->load(std::memory_order_relaxed);
      Clock::time_point earliest = Clock::time_point::max();
      for (std::size_t i = 0; i < entries_.size();) {
        if (interrupted || entries_[i].deadline <= now) {
          entries_[i].flag->store(true, std::memory_order_relaxed);
          entries_[i] = entries_.back();
          entries_.pop_back();
        } else {
          earliest = std::min(earliest, entries_[i].deadline);
          ++i;
        }
      }
      // With an interrupt flag to poll, never sleep longer than its poll
      // granularity; without one, sleep until the earliest deadline.
      if (interrupt_ != nullptr) {
        earliest = std::min(earliest,
                            now + std::chrono::milliseconds(50));
      }
      if (entries_.empty() && interrupt_ == nullptr) {
        cv_.wait(lock);
      } else {
        cv_.wait_until(lock, earliest);
      }
    }
  }

  const std::atomic<bool>* interrupt_ = nullptr;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Entry> entries_;
  std::uint64_t next_id_ = 1;
  bool stop_ = false;
  std::thread thread_;
};

std::string sweep_fingerprint(const std::vector<SweepJob>& jobs) {
  // Serialize everything that determines a cell's simulated result into a
  // flat description, then hash. Host-side knobs (jobs, log, timeout) are
  // deliberately excluded: they may differ between the killed run and the
  // resume without invalidating finished cells.
  std::ostringstream os;
  os << "sweep/v1:" << jobs.size();
  for (const SweepJob& job : jobs) {
    os << ";label=" << job.label << ";choice=" << to_string(job.choice)
       << ";apps=";
    for (const std::string& app : job.apps) os << app << ',';
    const Experiment& e = job.experiment;
    os << ";instr=" << e.instructions << ";warmup=" << e.warmup
       << ";train_seed=" << e.train_seed << ";ref_seed=" << e.ref_seed
       << ";train_scale=" << e.train_scale << ";ref_scale=" << e.ref_scale
       << ";othr=" << e.object_thresholds.thr_lat << ','
       << e.object_thresholds.thr_bw
       << ";athr=" << e.app_thresholds.thr_lat << ','
       << e.app_thresholds.thr_bw << ";cfg=" << e.hetero_config
       << ";epoch=" << e.observability.epoch_instructions
       << ";audit=" << (e.observability.audit ? 1 : 0)
       << ";faults=" << e.faults.text();
  }
  const std::string desc = os.str();
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64, then mixed
  for (const char c : desc) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  h = splitmix64(h);
  std::ostringstream hex;
  hex << std::hex;
  hex.width(16);
  hex.fill('0');
  hex << h;
  return hex.str();
}

SweepSupervisor::SweepSupervisor(SweepRunner& runner,
                                 SupervisorOptions options)
    : runner_(runner), options_(std::move(options)) {
  MOCA_CHECK_MSG(!options_.resume || !options_.journal_path.empty(),
                 "supervisor: resume requires a journal path");
  if (options_.max_attempts == 0) options_.max_attempts = 1;
  if (options_.isolate) {
    // Isolated cells are supervised by the parent's poll loop (deadline +
    // interrupt both handled in run_isolated), so no watchdog thread. The
    // CPU rlimit defaults to a generous multiple of the wall deadline as
    // a backstop against a child that wedges while burning CPU faster
    // than wall time (the wall SIGKILL normally fires first).
    if (options_.rlimit_cpu_seconds == 0 && options_.timeout_ms > 0.0) {
      options_.rlimit_cpu_seconds =
          static_cast<std::uint64_t>(std::ceil(options_.timeout_ms / 250.0)) +
          5;
    }
  } else if (options_.timeout_ms > 0.0 || options_.interrupt != nullptr) {
    watchdog_ = std::make_unique<Watchdog>(options_.interrupt);
  }
}

SweepSupervisor::~SweepSupervisor() = default;

void SweepSupervisor::load_journal(std::size_t job_count,
                                   std::vector<std::string>& cached,
                                   std::vector<SweepOutcome>& outcomes,
                                   std::size_t& resumed,
                                   std::size_t& torn) const {
  std::ifstream in(options_.journal_path);
  if (!in.is_open()) return;  // first run: nothing to resume yet
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  const std::string prefix = journal_prefix();
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& entry = lines[i];
    const bool last = i + 1 == lines.size();
    // Frame check; a torn final line (crash mid-append) is expected and
    // skipped, anything else means the journal is not ours to trust.
    std::string fp;
    std::size_t cell = job_count;
    std::string outcome;
    bool well_formed = entry.compare(0, prefix.size(), prefix) == 0;
    if (well_formed) {
      const std::size_t fp_end = entry.find('"', prefix.size());
      well_formed = fp_end != std::string::npos;
      if (well_formed) {
        fp = entry.substr(prefix.size(), fp_end - prefix.size());
        const std::string cell_key = "\",\"cell\":";
        well_formed = entry.compare(fp_end, cell_key.size(), cell_key) == 0;
        if (well_formed) {
          std::size_t pos = fp_end + cell_key.size();
          std::size_t digits = 0;
          cell = 0;
          while (pos < entry.size() && entry[pos] >= '0' &&
                 entry[pos] <= '9') {
            cell = cell * 10 + static_cast<std::size_t>(entry[pos] - '0');
            ++pos;
            ++digits;
          }
          const std::string outcome_key = ",\"outcome\":";
          well_formed =
              digits > 0 &&
              entry.compare(pos, outcome_key.size(), outcome_key) == 0 &&
              entry.back() == '}' && entry.size() > pos + outcome_key.size();
          if (well_formed) {
            outcome = entry.substr(pos + outcome_key.size(),
                                   entry.size() - pos - outcome_key.size() -
                                       1);
            well_formed = !outcome.empty() && outcome.front() == '{' &&
                          outcome.back() == '}';
          }
        }
      }
    }
    if (!well_formed) {
      if (last) {
        // Torn tail from the crash (the append was cut mid-write); count
        // it so callers can report the recovery, and re-run that cell.
        ++torn;
        break;
      }
      MOCA_CHECK_MSG(false, "supervisor: corrupt journal line "
                                << (i + 1) << " in '"
                                << options_.journal_path << "'");
    }
    MOCA_CHECK_MSG(fp == fingerprint_,
                   "supervisor: journal '"
                       << options_.journal_path
                       << "' was written by a different sweep (fingerprint "
                       << fp << ", expected " << fingerprint_ << ")");
    MOCA_CHECK_MSG(cell < job_count, "supervisor: journal cell "
                                         << cell << " out of range (sweep has "
                                         << job_count << " cells)");
    if (cached[cell].empty()) ++resumed;
    cached[cell] = outcome;

    // Summary-only outcome for callers that inspect Result::outcomes; the
    // full payload stays in the cached JSON.
    SweepOutcome& out = outcomes[cell];
    out.job_id = cell;
    out.resumed = true;
    std::string token;
    if (extract_token(outcome, "label", token)) out.label = token;
    if (extract_token(outcome, "ok", token)) out.ok = token == "true";
    if (extract_token(outcome, "kind", token)) {
      if (token == "failed") out.kind = SweepOutcome::FailureKind::kFailed;
      else if (token == "timed_out")
        out.kind = SweepOutcome::FailureKind::kTimedOut;
      else if (token == "quarantined")
        out.kind = SweepOutcome::FailureKind::kQuarantined;
      else if (token == "crashed")
        out.kind = SweepOutcome::FailureKind::kCrashed;
      else if (token == "oom_killed")
        out.kind = SweepOutcome::FailureKind::kOomKilled;
      else if (token == "interrupted")
        out.kind = SweepOutcome::FailureKind::kInterrupted;
      else
        out.kind = SweepOutcome::FailureKind::kNone;
    }
    if (extract_token(outcome, "attempts", token)) {
      out.attempts = static_cast<std::uint32_t>(std::stoul(token));
    }
  }
}

SweepOutcome SweepSupervisor::supervise_cell(
    std::size_t cell, const SweepJob& job,
    const std::map<std::string, core::ClassifiedApp>& db) {
  SweepOutcome out;
  out.job_id = cell;
  out.label = job.label;
  const double start = now_ms();
  const auto interrupted = [this] {
    return options_.interrupt != nullptr &&
           options_.interrupt->load(std::memory_order_relaxed);
  };
  std::uint32_t attempt = 0;
  for (;;) {
    if (interrupted()) {
      out.ok = false;
      out.kind = SweepOutcome::FailureKind::kInterrupted;
      out.error = "sweep interrupted";
      break;
    }
    Experiment experiment = job.experiment;
    experiment.fault_attempt = attempt;
    experiment.fault_cell = cell;
    std::atomic<bool> cancel{false};
    std::uint64_t token = 0;
    if (watchdog_ != nullptr) {
      experiment.cancel = &cancel;
      token = watchdog_->arm(&cancel, options_.timeout_ms);
    }
    try {
      out.result = run_workload(job.apps, job.choice, db, experiment);
      if (token != 0) watchdog_->disarm(token);
      out.ok = true;
      out.kind = SweepOutcome::FailureKind::kNone;
      out.error.clear();
      break;
    } catch (const CancelledError& e) {
      if (token != 0) watchdog_->disarm(token);
      out.ok = false;
      if (interrupted()) {
        // The watchdog fired because the sweep is being stopped, not
        // because this cell overran its budget.
        out.kind = SweepOutcome::FailureKind::kInterrupted;
        out.error = "sweep interrupted";
        break;
      }
      // Timeouts never retry: a wedged configuration wedges every attempt
      // and the budget is better spent on the remaining cells.
      out.kind = SweepOutcome::FailureKind::kTimedOut;
      out.error = e.what();
      break;
    } catch (const RetryableError& e) {
      if (token != 0) watchdog_->disarm(token);
      out.ok = false;
      out.error = e.what();
      if (attempt + 1 >= options_.max_attempts) {
        out.kind = SweepOutcome::FailureKind::kQuarantined;
        break;
      }
      if (options_.backoff_ms > 0.0) {
        const double delay = options_.backoff_ms *
                             static_cast<double>(std::uint64_t{1} << attempt);
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(delay));
      }
      ++attempt;
      continue;
    } catch (const std::exception& e) {
      if (token != 0) watchdog_->disarm(token);
      out.ok = false;
      out.kind = SweepOutcome::FailureKind::kFailed;
      out.error = e.what();
      break;
    }
  }
  out.attempts = attempt + 1;
  out.wall_ms = now_ms() - start;
  if (out.ok && out.wall_ms > 0.0) {
    out.sim_instr_per_sec =
        static_cast<double>(out.result.total_instructions) /
        (out.wall_ms * 1e-3);
  }
  return out;
}

SweepOutcome SweepSupervisor::supervise_cell_isolated(
    std::size_t cell, const SweepJob& job,
    const std::map<std::string, core::ClassifiedApp>& db,
    std::string& outcome_json) {
  SweepOutcome out;
  out.job_id = cell;
  out.label = job.label;
  const double start = now_ms();
  const auto interrupted = [this] {
    return options_.interrupt != nullptr &&
           options_.interrupt->load(std::memory_order_relaxed);
  };

  IsolationLimits limits;
  limits.deadline_ms = options_.timeout_ms;
  limits.rlimit_as_bytes = options_.rlimit_as_bytes;
  limits.rlimit_cpu_seconds = options_.rlimit_cpu_seconds;

  std::uint32_t attempt = 0;
  std::string delivered_json;  // verbatim child serialization when ok
  for (;;) {
    if (interrupted()) {
      out.ok = false;
      out.kind = SweepOutcome::FailureKind::kInterrupted;
      out.error = "sweep interrupted";
      break;
    }

    const ChildOutcome child = run_isolated(
        limits, options_.interrupt, [&](Heartbeat& heartbeat) {
          // Child side. The frame's outcome JSON is the child's own
          // deterministic serialization of a finished cell, so the parent
          // can splice it verbatim — the merge stays byte-identical to
          // in-process execution by construction.
          heartbeat.set_phase(ChildPhase::kRunning);
          ChildFrame frame;
          Experiment experiment = job.experiment;
          experiment.fault_attempt = attempt;
          experiment.fault_cell = cell;
          experiment.heartbeat = heartbeat.beats();
          try {
            SweepOutcome child_out;
            child_out.job_id = cell;
            child_out.label = job.label;
            child_out.result =
                run_workload(job.apps, job.choice, db, experiment);
            child_out.ok = true;
            child_out.kind = SweepOutcome::FailureKind::kNone;
            child_out.attempts = attempt + 1;
            heartbeat.set_phase(ChildPhase::kReporting);
            frame.kind = ChildFrame::Kind::kOk;
            frame.outcome_json = to_deterministic_json(child_out);
            frame.total_instructions = child_out.result.total_instructions;
          } catch (const CancelledError& e) {
            frame.kind = ChildFrame::Kind::kCancelled;
            frame.error = e.what();
          } catch (const RetryableError& e) {
            frame.kind = ChildFrame::Kind::kRetryable;
            frame.error = e.what();
          }
          // bad_alloc / other exceptions are classified by child_main.
          return frame;
        });

    // Decode ladder (docs/robustness.md has the user-facing table).
    bool retry = false;
    switch (child.status) {
      case ChildOutcome::Status::kDelivered:
        switch (child.frame.kind) {
          case ChildFrame::Kind::kOk:
            out.ok = true;
            out.kind = SweepOutcome::FailureKind::kNone;
            out.error.clear();
            out.result.total_instructions = child.frame.total_instructions;
            delivered_json = child.frame.outcome_json;
            break;
          case ChildFrame::Kind::kRetryable:
            out.ok = false;
            out.kind = SweepOutcome::FailureKind::kQuarantined;
            out.error = child.frame.error;
            retry = true;
            break;
          case ChildFrame::Kind::kCancelled:
            out.ok = false;
            out.kind = SweepOutcome::FailureKind::kTimedOut;
            out.error = child.frame.error;
            break;
          case ChildFrame::Kind::kOom:
            // The cap was hit cleanly (allocator threw before the kernel
            // had to step in). Transient by the same logic as a crash:
            // attempts=k fault clauses model recoverable pressure.
            out.ok = false;
            out.kind = SweepOutcome::FailureKind::kOomKilled;
            out.error = child.frame.error;
            retry = true;
            break;
          case ChildFrame::Kind::kFailed:
            out.ok = false;
            out.kind = SweepOutcome::FailureKind::kFailed;
            out.error = child.frame.error;
            break;
        }
        break;
      case ChildOutcome::Status::kCrashed:
        out.ok = false;
        // An un-asked-for SIGKILL is the kernel OOM killer's signature
        // (the parent only SIGKILLs for deadline/interrupt, decoded
        // separately); everything else is a crash.
        out.kind = child.signal == SIGKILL
                       ? SweepOutcome::FailureKind::kOomKilled
                       : SweepOutcome::FailureKind::kCrashed;
        out.crash_signal = child.signal;
        out.crash_phase = to_string(child.last_phase);
        out.error = "isolated child died with signal " +
                    std::to_string(child.signal) + " in phase " +
                    out.crash_phase;
        retry = true;
        break;
      case ChildOutcome::Status::kDeadline:
        // Deadlines never retry, same policy as cooperative timeouts.
        // Static text: no wall-clock values, so the outcome bytes stay
        // deterministic.
        out.ok = false;
        out.kind = SweepOutcome::FailureKind::kTimedOut;
        out.error = "isolated child exceeded its wall-clock deadline "
                    "(SIGKILL)";
        break;
      case ChildOutcome::Status::kInterrupted:
        out.ok = false;
        out.kind = SweepOutcome::FailureKind::kInterrupted;
        out.error = "sweep interrupted";
        break;
      case ChildOutcome::Status::kExited:
        out.ok = false;
        out.kind = SweepOutcome::FailureKind::kFailed;
        out.error = "isolated child exited with code " +
                    std::to_string(child.exit_code) +
                    " without a result frame";
        break;
    }
    if (out.ok || !retry) break;
    if (attempt + 1 >= options_.max_attempts) break;  // kind already final
    if (options_.backoff_ms > 0.0) {
      const double delay = options_.backoff_ms *
                           static_cast<double>(std::uint64_t{1} << attempt);
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(delay));
    }
    ++attempt;
  }
  out.attempts = attempt + 1;
  out.wall_ms = now_ms() - start;
  if (out.ok && out.wall_ms > 0.0) {
    out.sim_instr_per_sec =
        static_cast<double>(out.result.total_instructions) /
        (out.wall_ms * 1e-3);
  }
  // Hand run() the child's verbatim serialization for ok cells (the full
  // RunResult never crossed the pipe, so the parent could not re-produce
  // those bytes itself); failures are serialized parent-side.
  outcome_json = out.ok ? delivered_json : std::string();
  return out;
}

SweepSupervisor::Result SweepSupervisor::run(
    const std::vector<SweepJob>& jobs,
    const std::map<std::string, core::ClassifiedApp>& db) {
  fingerprint_ = sweep_fingerprint(jobs);

  Result result;
  result.outcomes.resize(jobs.size());
  std::vector<std::string> cached(jobs.size());
  if (options_.resume) {
    load_journal(jobs.size(), cached, result.outcomes,
                 result.resumed_cells, result.torn_journal_lines);
  }

  // POSIX fd rather than an ofstream: durability requires fsync after
  // every line (a cell is only "done" once its journal entry would
  // survive a host crash), and only the fd API exposes that.
  int journal_fd = -1;
  std::mutex journal_mutex;
  if (!options_.journal_path.empty()) {
    // Fresh sweeps truncate so stale cells from an unrelated earlier run
    // can never leak into a later resume; resumes append.
    journal_fd = ::open(options_.journal_path.c_str(),
                        O_WRONLY | O_CREAT |
                            (options_.resume ? O_APPEND : O_TRUNC),
                        0644);
    MOCA_CHECK_MSG(journal_fd >= 0, "supervisor: cannot open journal '"
                                        << options_.journal_path << "'");
  }

  std::vector<std::size_t> pending;
  pending.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (cached[i].empty()) pending.push_back(i);
  }

  runner_.for_each_index(pending.size(), [&](std::size_t slot) {
    const std::size_t cell = pending[slot];
    std::string json;
    SweepOutcome out;
    if (options_.isolate) {
      out = supervise_cell_isolated(cell, jobs[cell], db, json);
    } else {
      out = supervise_cell(cell, jobs[cell], db);
    }
    if (json.empty()) json = to_deterministic_json(out);
    // Interrupted cells are never journaled: they produced no result, and
    // resume must re-run them for the merged report to reach the
    // uninterrupted run's bytes.
    const bool journal_it =
        journal_fd >= 0 &&
        out.kind != SweepOutcome::FailureKind::kInterrupted;
    if (journal_it) {
      // One fsynced line per cell: after a kill -9 or power loss,
      // everything before the (possibly torn) final line is recoverable.
      const std::string line =
          journal_line(fingerprint_, cell, json) + '\n';
      std::lock_guard lock(journal_mutex);
      std::size_t done = 0;
      while (done < line.size()) {
        const ssize_t n =
            ::write(journal_fd, line.data() + done, line.size() - done);
        if (n < 0) {
          if (errno == EINTR) continue;
          MOCA_CHECK_MSG(false, "supervisor: journal write failed ('"
                                    << options_.journal_path << "')");
        }
        done += static_cast<std::size_t>(n);
      }
      ::fsync(journal_fd);
    }
    cached[cell] = json;                    // distinct cells, no race
    result.outcomes[cell] = std::move(out);
  });

  if (journal_fd >= 0) ::close(journal_fd);

  for (const SweepOutcome& out : result.outcomes) {
    if (out.kind == SweepOutcome::FailureKind::kInterrupted) {
      result.interrupted = true;
      break;
    }
  }
  result.report = sweep_report_json(cached, result.interrupted);
  result.outcome_jsons = std::move(cached);
  return result;
}

}  // namespace moca::sim
