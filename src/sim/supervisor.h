// Supervised sweeps: wall-clock timeouts, bounded retry with backoff,
// quarantine and crash-safe resume on top of SweepRunner.
//
// The plain SweepRunner runs every cell exactly once and captures failures
// as text; for the paper-scale sweeps behind Figs. 8-15 that is not enough:
// a wedged cell stalls the whole sweep, a transient fault kills a cell that
// a retry would have saved, and a killed process loses every finished
// cell. The supervisor adds, per cell:
//
//   timeout     a watchdog thread arms a per-attempt deadline; when it
//               expires it sets the job's cooperative cancellation flag and
//               System::run throws CancelledError (kind = timed_out).
//   retry       attempts failing with RetryableError re-run (with
//               exponential backoff) up to max_attempts; the retry ordinal
//               feeds Experiment::fault_attempt so `attempts=k` fault
//               clauses model genuinely transient faults. A cell whose
//               retries are exhausted is quarantined, not retried forever.
//   journal     every finished cell appends one line to an append-only
//               journal and fsyncs before the cell counts as durable; a
//               killed sweep restarted with resume=true re-runs only the
//               cells missing from the journal and splices the finished
//               ones back in, byte-identical to an uninterrupted run. A
//               torn final line (kill mid-append) is tolerated and counted.
//   isolation   with isolate=true each cell runs in a forked child under
//               RLIMIT_AS/RLIMIT_CPU caps (src/sim/isolation.h); the
//               parent enforces the wall-clock deadline by SIGKILL and
//               decodes child deaths into kCrashed (signal + heartbeat
//               phase fingerprint) / kOomKilled, so a SIGSEGV or an OOM
//               kill costs one cell, not the sweep.
//   interrupt   an optional interrupt flag (SIGINT/SIGTERM handler in the
//               CLI) stops the sweep gracefully: running cells are
//               cancelled/SIGKILLed, unfinished cells are marked
//               kInterrupted and kept out of the journal, and the partial
//               report is flagged "interrupted" so resume re-runs them.
//
// Everything that lands in the journal or the merged report is produced by
// sim::to_deterministic_json, so the report bytes depend only on simulated
// state — never on worker count, kill points or host timing
// (docs/robustness.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/sweep.h"

namespace moca::sim {

struct SupervisorOptions {
  /// Per-attempt wall-clock budget in milliseconds; 0 disables the
  /// watchdog (jobs can run forever, as under the plain runner).
  double timeout_ms = 0.0;
  /// Attempts per cell (first try + retries) for RetryableError failures;
  /// clamped to >= 1. Timeouts and permanent errors never retry.
  std::uint32_t max_attempts = 3;
  /// Base host-side backoff before the first retry, doubling per further
  /// retry; 0 retries immediately (the deterministic default — tests rely
  /// on retry behaviour being timing-independent).
  double backoff_ms = 0.0;
  /// Append-only journal path; empty runs without crash safety.
  std::string journal_path;
  /// Load finished cells from journal_path before running (crash
  /// recovery). Requires journal_path.
  bool resume = false;
  /// Run every cell in a forked child process (crash containment; POSIX
  /// only). timeout_ms becomes a hard parent-side SIGKILL deadline.
  bool isolate = false;
  /// RLIMIT_AS cap applied inside each isolated child; 0 = unlimited.
  std::uint64_t rlimit_as_bytes = 0;
  /// RLIMIT_CPU cap (seconds) applied inside each isolated child; 0
  /// derives a backstop from timeout_ms (the wall deadline is primary).
  std::uint64_t rlimit_cpu_seconds = 0;
  /// Graceful-stop flag (typically set by a SIGINT/SIGTERM handler).
  /// When it becomes true, running cells are cancelled (in-process) or
  /// SIGKILLed (isolated) and every unfinished cell is reported as
  /// kInterrupted without being journaled. Null = never interrupted.
  const std::atomic<bool>* interrupt = nullptr;
};

/// Drives supervised jobs over a SweepRunner pool. The runner reference
/// must outlive the supervisor.
class SweepSupervisor {
 public:
  SweepSupervisor(SweepRunner& runner, SupervisorOptions options);
  ~SweepSupervisor();

  SweepSupervisor(const SweepSupervisor&) = delete;
  SweepSupervisor& operator=(const SweepSupervisor&) = delete;

  struct Result {
    /// Outcomes in submission order. Resumed cells carry only the summary
    /// fields (job_id, label, ok, kind, attempts; resumed == true).
    std::vector<SweepOutcome> outcomes;
    /// Deterministic merged sweep report,
    /// {"schema_version":N,"outcomes":[...]}: byte-identical for any
    /// worker count, for any kill/resume split of the same sweep, and for
    /// isolated vs in-process execution of every surviving cell.
    std::string report;
    /// Per-cell deterministic outcome JSON, in submission order (the
    /// report's "outcomes" elements; exposed so callers can compare
    /// surviving cells independently of a failed one).
    std::vector<std::string> outcome_jsons;
    /// Cells recovered from the journal instead of re-run.
    std::size_t resumed_cells = 0;
    /// Torn trailing journal lines tolerated during resume (0 or 1: a
    /// crash can only ever tear the final append).
    std::size_t torn_journal_lines = 0;
    /// True when the interrupt flag stopped the sweep early; the report
    /// carries "interrupted":true and kInterrupted cells then.
    bool interrupted = false;
  };

  /// Runs (or resumes) the sweep. Throws CheckError when the journal is
  /// unusable: a corrupt non-final line, a cell index out of range, or a
  /// fingerprint recorded for a different sweep definition. A partial
  /// final line (the crash happened mid-write) is tolerated, counted in
  /// Result::torn_journal_lines, and that cell is re-run.
  [[nodiscard]] Result run(
      const std::vector<SweepJob>& jobs,
      const std::map<std::string, core::ClassifiedApp>& db);

 private:
  class Watchdog;

  [[nodiscard]] SweepOutcome supervise_cell(
      std::size_t cell, const SweepJob& job,
      const std::map<std::string, core::ClassifiedApp>& db);
  /// Isolated variant: `outcome_json` receives the child's verbatim
  /// deterministic serialization for ok cells (empty on failure — the
  /// caller serializes the parent-constructed failure outcome itself).
  [[nodiscard]] SweepOutcome supervise_cell_isolated(
      std::size_t cell, const SweepJob& job,
      const std::map<std::string, core::ClassifiedApp>& db,
      std::string& outcome_json);
  void load_journal(std::size_t job_count,
                    std::vector<std::string>& cached,
                    std::vector<SweepOutcome>& outcomes,
                    std::size_t& resumed, std::size_t& torn) const;

  SweepRunner& runner_;
  SupervisorOptions options_;
  std::unique_ptr<Watchdog> watchdog_;
  std::string fingerprint_;
};

/// Stable hex fingerprint of a sweep definition (jobs + the experiment
/// fields that affect simulated results). Written into every journal line
/// so resume refuses to merge cells from a different sweep.
[[nodiscard]] std::string sweep_fingerprint(const std::vector<SweepJob>& jobs);

}  // namespace moca::sim
