// Supervised sweeps: wall-clock timeouts, bounded retry with backoff,
// quarantine and crash-safe resume on top of SweepRunner.
//
// The plain SweepRunner runs every cell exactly once and captures failures
// as text; for the paper-scale sweeps behind Figs. 8-15 that is not enough:
// a wedged cell stalls the whole sweep, a transient fault kills a cell that
// a retry would have saved, and a killed process loses every finished
// cell. The supervisor adds, per cell:
//
//   timeout     a watchdog thread arms a per-attempt deadline; when it
//               expires it sets the job's cooperative cancellation flag and
//               System::run throws CancelledError (kind = timed_out).
//   retry       attempts failing with RetryableError re-run (with
//               exponential backoff) up to max_attempts; the retry ordinal
//               feeds Experiment::fault_attempt so `attempts=k` fault
//               clauses model genuinely transient faults. A cell whose
//               retries are exhausted is quarantined, not retried forever.
//   journal     every finished cell appends one line to an append-only
//               journal and flushes before the next cell can complete; a
//               killed sweep restarted with resume=true re-runs only the
//               cells missing from the journal and splices the finished
//               ones back in, byte-identical to an uninterrupted run.
//
// Everything that lands in the journal or the merged report is produced by
// sim::to_deterministic_json, so the report bytes depend only on simulated
// state — never on worker count, kill points or host timing
// (docs/robustness.md).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/sweep.h"

namespace moca::sim {

struct SupervisorOptions {
  /// Per-attempt wall-clock budget in milliseconds; 0 disables the
  /// watchdog (jobs can run forever, as under the plain runner).
  double timeout_ms = 0.0;
  /// Attempts per cell (first try + retries) for RetryableError failures;
  /// clamped to >= 1. Timeouts and permanent errors never retry.
  std::uint32_t max_attempts = 3;
  /// Base host-side backoff before the first retry, doubling per further
  /// retry; 0 retries immediately (the deterministic default — tests rely
  /// on retry behaviour being timing-independent).
  double backoff_ms = 0.0;
  /// Append-only journal path; empty runs without crash safety.
  std::string journal_path;
  /// Load finished cells from journal_path before running (crash
  /// recovery). Requires journal_path.
  bool resume = false;
};

/// Drives supervised jobs over a SweepRunner pool. The runner reference
/// must outlive the supervisor.
class SweepSupervisor {
 public:
  SweepSupervisor(SweepRunner& runner, SupervisorOptions options);
  ~SweepSupervisor();

  SweepSupervisor(const SweepSupervisor&) = delete;
  SweepSupervisor& operator=(const SweepSupervisor&) = delete;

  struct Result {
    /// Outcomes in submission order. Resumed cells carry only the summary
    /// fields (job_id, label, ok, kind, attempts; resumed == true).
    std::vector<SweepOutcome> outcomes;
    /// Deterministic merged sweep report,
    /// {"schema_version":3,"outcomes":[...]}: byte-identical for any
    /// worker count and for any kill/resume split of the same sweep.
    std::string report;
    /// Cells recovered from the journal instead of re-run.
    std::size_t resumed_cells = 0;
  };

  /// Runs (or resumes) the sweep. Throws CheckError when the journal is
  /// unusable: a corrupt non-final line, a cell index out of range, or a
  /// fingerprint recorded for a different sweep definition. A partial
  /// final line (the crash happened mid-write) is discarded silently.
  [[nodiscard]] Result run(
      const std::vector<SweepJob>& jobs,
      const std::map<std::string, core::ClassifiedApp>& db);

 private:
  class Watchdog;

  [[nodiscard]] SweepOutcome supervise_cell(
      std::size_t cell, const SweepJob& job,
      const std::map<std::string, core::ClassifiedApp>& db);
  void load_journal(std::size_t job_count,
                    std::vector<std::string>& cached,
                    std::vector<SweepOutcome>& outcomes,
                    std::size_t& resumed) const;

  SweepRunner& runner_;
  SupervisorOptions options_;
  std::unique_ptr<Watchdog> watchdog_;
  std::string fingerprint_;
};

/// Stable hex fingerprint of a sweep definition (jobs + the experiment
/// fields that affect simulated results). Written into every journal line
/// so resume refuses to merge cells from a different sweep.
[[nodiscard]] std::string sweep_fingerprint(const std::vector<SweepJob>& jobs);

}  // namespace moca::sim
