#include "sim/experiment_options.h"

#include <cstdlib>
#include <iostream>
#include <optional>

#include "common/check.h"
#include "moca/adaptive.h"

namespace moca::sim {
namespace {

/// Flags every entry point understands (see the header table).
const std::vector<FlagSpec>& shared_flags() {
  static const std::vector<FlagSpec> kShared = {
      {"instr", true},  {"warmup", true}, {"config", true}, {"epoch", true},
      {"trace-out", true}, {"jobs", true}, {"log", false},
      {"fault-plan", true}, {"timeout-ms", true}, {"retries", true},
      {"journal", true}, {"resume", true}, {"audit", false},
      {"adaptive", true}, {"isolate", false}, {"rlimit-as-mb", true},
      {"rlimit-cpu-s", true},
  };
  return kShared;
}

const FlagSpec* find_flag(const std::string& name,
                          const std::vector<FlagSpec>& extra) {
  for (const FlagSpec& spec : shared_flags()) {
    if (spec.name == name) return &spec;
  }
  for (const FlagSpec& spec : extra) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

std::uint64_t parse_u64(const std::string& text, const std::string& what) {
  // strtoull silently wraps a leading '-' to a huge value; reject it so
  // "-1" fails loudly like every other malformed number.
  MOCA_CHECK_MSG(!text.empty() && text[0] != '-',
                 what << " needs a non-negative number, got '" << text
                      << "'");
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  MOCA_CHECK_MSG(end != text.c_str() && *end == '\0',
                 what << " needs a number, got '" << text << "'");
  return value;
}

std::optional<std::uint64_t> env_u64(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr) return std::nullopt;
  return parse_u64(value, name);
}

}  // namespace

std::string ParsedArgs::get(const std::string& f, std::string fallback) const {
  const auto it = flags.find(f);
  return it == flags.end() ? std::move(fallback) : it->second;
}

std::uint64_t ParsedArgs::get_u64(const std::string& f,
                                  std::uint64_t fallback) const {
  const auto it = flags.find(f);
  if (it == flags.end()) return fallback;
  return parse_u64(it->second, "flag --" + f);
}

ParsedArgs parse_args(int argc, char** argv, int start,
                      const std::vector<FlagSpec>& extra) {
  ParsedArgs args;
  for (int i = start; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      args.positional.push_back(token);
      continue;
    }
    const std::string name = token.substr(2);
    const FlagSpec* spec = find_flag(name, extra);
    MOCA_CHECK_MSG(spec != nullptr, "unknown flag --" << name);
    if (!spec->takes_value) {
      args.flags[name] = "1";
      continue;
    }
    MOCA_CHECK_MSG(i + 1 < argc, "flag --" << name << " needs a value");
    args.flags[name] = argv[++i];
  }
  return args;
}

ExperimentOptions ExperimentOptions::from_env() {
  ExperimentOptions options;
  if (const auto v = env_u64("MOCA_SIM_INSTR")) {
    MOCA_CHECK_MSG(*v > 0, "MOCA_SIM_INSTR must be a positive integer");
    options.experiment.instructions = *v;
    options.instructions_overridden = true;
  }
  if (const auto v = env_u64("MOCA_SIM_WARMUP")) {
    options.experiment.warmup = *v;
  }
  if (const auto v = env_u64("MOCA_SIM_CONFIG")) {
    options.experiment.hetero_config = static_cast<int>(*v);
  }
  if (const auto v = env_u64("MOCA_SIM_EPOCH")) {
    options.experiment.observability.epoch_instructions = *v;
  }
  if (const char* trace = std::getenv("MOCA_SIM_TRACE");
      trace != nullptr && *trace != '\0') {
    options.trace_out = trace;
    options.experiment.observability.trace = true;
  }
  if (const auto v = env_u64("MOCA_SIM_JOBS")) {
    options.jobs = static_cast<unsigned>(*v);
  }
  if (std::getenv("MOCA_SWEEP_LOG") != nullptr) options.sweep_log = true;
  if (const char* faults = std::getenv("MOCA_SIM_FAULTS");
      faults != nullptr && *faults != '\0') {
    options.experiment.faults = FaultPlan::parse(faults);
  }
  if (const auto v = env_u64("MOCA_SIM_TIMEOUT_MS")) {
    options.supervisor.timeout_ms = static_cast<double>(*v);
    options.supervised = true;
  }
  if (const auto v = env_u64("MOCA_SIM_RETRIES")) {
    MOCA_CHECK_MSG(*v > 0, "MOCA_SIM_RETRIES must be a positive integer");
    options.supervisor.max_attempts = static_cast<std::uint32_t>(*v);
    options.supervised = true;
  }
  if (std::getenv("MOCA_SIM_ISOLATE") != nullptr) {
    options.supervisor.isolate = true;
    options.supervised = true;
  }
  if (const auto v = env_u64("MOCA_SIM_RLIMIT_AS_MB")) {
    options.supervisor.rlimit_as_bytes = *v << 20;
    options.supervisor.isolate = true;
    options.supervised = true;
  }
  if (const auto v = env_u64("MOCA_SIM_RLIMIT_CPU_S")) {
    options.supervisor.rlimit_cpu_seconds = *v;
    options.supervisor.isolate = true;
    options.supervised = true;
  }
  if (std::getenv("MOCA_SIM_AUDIT") != nullptr) {
    options.experiment.observability.audit = true;
  }
  if (const char* adaptive = std::getenv("MOCA_SIM_ADAPTIVE");
      adaptive != nullptr && *adaptive != '\0') {
    options.experiment.adaptive = core::parse_adaptive_spec(adaptive);
  }
  return options;
}

void ExperimentOptions::apply_flags(const ParsedArgs& args) {
  if (args.has("instr")) {
    const std::uint64_t value = args.get_u64("instr", 0);
    MOCA_CHECK_MSG(value > 0, "flag --instr must be positive");
    experiment.instructions = value;
    instructions_overridden = true;
  }
  if (args.has("warmup")) {
    experiment.warmup = args.get_u64("warmup", experiment.warmup);
  }
  if (args.has("config")) {
    experiment.hetero_config = static_cast<int>(
        args.get_u64("config", experiment.hetero_config));
  }
  if (args.has("epoch")) {
    experiment.observability.epoch_instructions =
        args.get_u64("epoch", experiment.observability.epoch_instructions);
  }
  if (args.has("trace-out")) {
    trace_out = args.get("trace-out");
    MOCA_CHECK_MSG(!trace_out.empty(), "flag --trace-out needs a file path");
    experiment.observability.trace = true;
  }
  if (args.has("jobs")) {
    jobs = static_cast<unsigned>(args.get_u64("jobs", jobs));
  }
  if (args.has("log")) sweep_log = true;
  if (args.has("fault-plan")) {
    experiment.faults = FaultPlan::parse(args.get("fault-plan"));
  }
  if (args.has("timeout-ms")) {
    supervisor.timeout_ms =
        static_cast<double>(args.get_u64("timeout-ms", 0));
    supervised = true;
  }
  if (args.has("retries")) {
    const std::uint64_t value = args.get_u64("retries", 0);
    MOCA_CHECK_MSG(value > 0, "flag --retries must be positive");
    supervisor.max_attempts = static_cast<std::uint32_t>(value);
    supervised = true;
  }
  if (args.has("journal")) {
    supervisor.journal_path = args.get("journal");
    MOCA_CHECK_MSG(!supervisor.journal_path.empty(),
                   "flag --journal needs a file path");
    supervised = true;
  }
  if (args.has("resume")) {
    supervisor.journal_path = args.get("resume");
    MOCA_CHECK_MSG(!supervisor.journal_path.empty(),
                   "flag --resume needs a file path");
    supervisor.resume = true;
    supervised = true;
  }
  if (args.has("isolate")) {
    supervisor.isolate = true;
    supervised = true;
  }
  if (args.has("rlimit-as-mb")) {
    const std::uint64_t value = args.get_u64("rlimit-as-mb", 0);
    MOCA_CHECK_MSG(value > 0, "flag --rlimit-as-mb must be positive");
    supervisor.rlimit_as_bytes = value << 20;
    supervisor.isolate = true;  // caps imply isolation
    supervised = true;
  }
  if (args.has("rlimit-cpu-s")) {
    const std::uint64_t value = args.get_u64("rlimit-cpu-s", 0);
    MOCA_CHECK_MSG(value > 0, "flag --rlimit-cpu-s must be positive");
    supervisor.rlimit_cpu_seconds = value;
    supervisor.isolate = true;
    supervised = true;
  }
  if (args.has("audit")) experiment.observability.audit = true;
  if (args.has("adaptive")) {
    // "--adaptive off" overrides an environment opt-in (flag > env).
    experiment.adaptive = core::parse_adaptive_spec(args.get("adaptive"));
  }
}

SweepRunner ExperimentOptions::make_runner() const {
  SweepRunner runner(jobs);
  if (sweep_log) runner.set_log(&std::cerr);
  return runner;
}

}  // namespace moca::sim
