#include "sim/isolation.h"

#include <poll.h>
#include <sys/mman.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>

#include "common/check.h"

namespace moca::sim {
namespace {

using Clock = std::chrono::steady_clock;

// Shared-page layout: the beat counter at offset 0, the phase byte at
// offset 64 (its own cache line, so the parent's reads never contend with
// the simulation's beat bumps).
constexpr std::size_t kBeatsOffset = 0;
constexpr std::size_t kPhaseOffset = 64;
constexpr std::size_t kPageBytes = 4096;

std::atomic<std::uint64_t>* beats_slot(void* page) {
  return reinterpret_cast<std::atomic<std::uint64_t>*>(
      static_cast<char*>(page) + kBeatsOffset);
}

std::atomic<std::uint8_t>* phase_slot(void* page) {
  return reinterpret_cast<std::atomic<std::uint8_t>*>(
      static_cast<char*>(page) + kPhaseOffset);
}

// Frame wire format, little-endian, written in one buffer so the child
// does a single write() for typical frame sizes:
//   u32 magic  u32 version  u8 kind  u64 total_instructions
//   u32 error_len  error bytes  u32 json_len  json bytes
constexpr std::uint32_t kFrameMagic = 0x4d4f4341;  // "MOCA"
constexpr std::uint32_t kFrameVersion = 1;

template <typename T>
void put(std::string& buf, T value) {
  char raw[sizeof(T)];
  std::memcpy(raw, &value, sizeof(T));
  buf.append(raw, sizeof(T));
}

template <typename T>
bool get(const std::string& buf, std::size_t& pos, T& value) {
  if (pos + sizeof(T) > buf.size()) return false;
  std::memcpy(&value, buf.data() + pos, sizeof(T));
  pos += sizeof(T);
  return true;
}

std::string encode_frame(const ChildFrame& frame) {
  std::string buf;
  buf.reserve(32 + frame.error.size() + frame.outcome_json.size());
  put(buf, kFrameMagic);
  put(buf, kFrameVersion);
  put(buf, static_cast<std::uint8_t>(frame.kind));
  put(buf, frame.total_instructions);
  put(buf, static_cast<std::uint32_t>(frame.error.size()));
  buf += frame.error;
  put(buf, static_cast<std::uint32_t>(frame.outcome_json.size()));
  buf += frame.outcome_json;
  return buf;
}

enum class ParseState { kNeedMore, kComplete, kMalformed };

/// Incremental decode of the pipe buffer. kComplete fills `frame`;
/// kMalformed means the bytes can never become a frame (bad magic or
/// version — e.g. stray child output), so the parent stops trying.
ParseState try_parse_frame(const std::string& buf, ChildFrame& frame) {
  std::size_t pos = 0;
  std::uint32_t magic = 0, version = 0;
  if (!get(buf, pos, magic)) return ParseState::kNeedMore;
  if (magic != kFrameMagic) return ParseState::kMalformed;
  if (!get(buf, pos, version)) return ParseState::kNeedMore;
  if (version != kFrameVersion) return ParseState::kMalformed;
  std::uint8_t kind = 0;
  if (!get(buf, pos, kind)) return ParseState::kNeedMore;
  if (kind > static_cast<std::uint8_t>(ChildFrame::Kind::kOom)) {
    return ParseState::kMalformed;
  }
  std::uint64_t instructions = 0;
  if (!get(buf, pos, instructions)) return ParseState::kNeedMore;
  std::uint32_t error_len = 0;
  if (!get(buf, pos, error_len)) return ParseState::kNeedMore;
  if (pos + error_len > buf.size()) return ParseState::kNeedMore;
  const std::size_t error_pos = pos;
  pos += error_len;
  std::uint32_t json_len = 0;
  if (!get(buf, pos, json_len)) return ParseState::kNeedMore;
  if (pos + json_len > buf.size()) return ParseState::kNeedMore;
  frame.kind = static_cast<ChildFrame::Kind>(kind);
  frame.total_instructions = instructions;
  frame.error = buf.substr(error_pos, error_len);
  frame.outcome_json = buf.substr(pos, json_len);
  return ParseState::kComplete;
}

bool write_all(int fd, const std::string& buf) {
  std::size_t done = 0;
  while (done < buf.size()) {
    const ssize_t n = ::write(fd, buf.data() + done, buf.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

void apply_rlimit(int resource, std::uint64_t value) {
  if (value == 0) return;
  rlimit lim{};
  lim.rlim_cur = static_cast<rlim_t>(value);
  lim.rlim_max = static_cast<rlim_t>(value);
  // Failure to tighten a limit is not fatal for the cell (the parent's
  // deadline still bounds it), and the child has no safe reporting channel
  // besides the frame — so best-effort.
  (void)::setrlimit(resource, &lim);
}

/// Child-side mainline between fork and _exit: caps, callback, frame.
[[noreturn]] void child_main(int write_fd, void* page,
                             const IsolationLimits& limits,
                             const std::function<ChildFrame(Heartbeat&)>& fn) {
  apply_rlimit(RLIMIT_AS, limits.rlimit_as_bytes);
  apply_rlimit(RLIMIT_CPU, limits.rlimit_cpu_seconds);
  Heartbeat heartbeat(page);
  ChildFrame frame;
  try {
    frame = fn(heartbeat);
  } catch (const std::bad_alloc&) {
    frame.kind = ChildFrame::Kind::kOom;
    frame.error = "isolated child ran out of memory (bad_alloc)";
  } catch (const std::exception& e) {
    frame.kind = ChildFrame::Kind::kFailed;
    frame.error = e.what();
  } catch (...) {
    frame.kind = ChildFrame::Kind::kFailed;
    frame.error = "isolated child failed with an unknown exception";
  }
  const bool sent = write_all(write_fd, encode_frame(frame));
  heartbeat.set_phase(ChildPhase::kDone);
  // _exit, never exit: the child shares the parent's atexit handlers and
  // global destructors, which must run exactly once — in the parent.
  ::_exit(sent ? 0 : 3);
}

}  // namespace

std::string to_string(ChildPhase phase) {
  switch (phase) {
    case ChildPhase::kSpawned:
      return "spawned";
    case ChildPhase::kRunning:
      return "running";
    case ChildPhase::kReporting:
      return "reporting";
    case ChildPhase::kDone:
      return "done";
  }
  return "unknown";
}

Heartbeat::Heartbeat(void* page) : page_(page) {}

void Heartbeat::set_phase(ChildPhase phase) {
  phase_slot(page_)->store(static_cast<std::uint8_t>(phase),
                           std::memory_order_release);
}

std::atomic<std::uint64_t>* Heartbeat::beats() { return beats_slot(page_); }

ChildOutcome run_isolated(const IsolationLimits& limits,
                          const std::atomic<bool>* interrupt,
                          const std::function<ChildFrame(Heartbeat&)>& fn) {
  // The heartbeat page is MAP_SHARED so the parent still sees the child's
  // final beat/phase after the child is gone.
  void* page = ::mmap(nullptr, kPageBytes, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  MOCA_CHECK_MSG(page != MAP_FAILED,
                 "isolation: mmap of the heartbeat page failed (errno "
                     << errno << ")");
  beats_slot(page)->store(0, std::memory_order_relaxed);
  phase_slot(page)->store(static_cast<std::uint8_t>(ChildPhase::kSpawned),
                          std::memory_order_relaxed);

  int fds[2] = {-1, -1};
  if (::pipe(fds) != 0) {
    const int err = errno;
    ::munmap(page, kPageBytes);
    MOCA_CHECK_MSG(false, "isolation: pipe failed (errno " << err << ")");
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    const int err = errno;
    ::close(fds[0]);
    ::close(fds[1]);
    ::munmap(page, kPageBytes);
    MOCA_CHECK_MSG(false, "isolation: fork failed (errno " << err << ")");
  }
  if (pid == 0) {
    ::close(fds[0]);
    child_main(fds[1], page, limits, fn);  // never returns
  }
  ::close(fds[1]);
  const int read_fd = fds[0];

  const bool has_deadline = limits.deadline_ms > 0.0;
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(
                             has_deadline ? limits.deadline_ms : 0.0));

  ChildOutcome outcome;
  std::string buf;
  bool frame_complete = false;
  bool frame_malformed = false;
  bool killed_deadline = false;
  bool killed_interrupt = false;

  // Read until EOF, enforcing the deadline and the interrupt flag while
  // the frame is still incomplete. Once the frame is in, the child is one
  // set_phase + _exit away, so enforcement stops (no kill can tear the
  // result any more).
  for (;;) {
    int wait_ms = 100;  // interrupt poll granularity
    if (has_deadline && !frame_complete && !killed_deadline &&
        !killed_interrupt) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      const int left_ms = static_cast<int>(left.count());
      if (left_ms <= 0) {
        ::kill(pid, SIGKILL);
        killed_deadline = true;
      } else if (left_ms < wait_ms) {
        wait_ms = left_ms;
      }
    }
    if (interrupt != nullptr && !frame_complete && !killed_deadline &&
        !killed_interrupt &&
        interrupt->load(std::memory_order_relaxed)) {
      ::kill(pid, SIGKILL);
      killed_interrupt = true;
    }

    pollfd pfd{read_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, wait_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;  // poll failure: fall through to waitpid with what we have
    }
    if (ready == 0) continue;  // timeout slice: re-check deadline/interrupt

    char chunk[4096];
    const ssize_t n = ::read(read_fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // EOF: the write end is gone, the child is done
    if (!frame_malformed && !frame_complete) {
      buf.append(chunk, static_cast<std::size_t>(n));
      switch (try_parse_frame(buf, outcome.frame)) {
        case ParseState::kComplete:
          frame_complete = true;
          break;
        case ParseState::kMalformed:
          frame_malformed = true;
          break;
        case ParseState::kNeedMore:
          break;
      }
    }
  }
  ::close(read_fd);

  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }

  outcome.beats = beats_slot(page)->load(std::memory_order_relaxed);
  outcome.last_phase = static_cast<ChildPhase>(
      phase_slot(page)->load(std::memory_order_acquire));
  ::munmap(page, kPageBytes);

  if (killed_deadline) {
    outcome.status = ChildOutcome::Status::kDeadline;
    outcome.signal = SIGKILL;
  } else if (killed_interrupt) {
    outcome.status = ChildOutcome::Status::kInterrupted;
    outcome.signal = SIGKILL;
  } else if (WIFSIGNALED(status)) {
    outcome.status = ChildOutcome::Status::kCrashed;
    outcome.signal = WTERMSIG(status);
  } else if (WIFEXITED(status)) {
    outcome.exit_code = WEXITSTATUS(status);
    outcome.status = (outcome.exit_code == 0 && frame_complete)
                         ? ChildOutcome::Status::kDelivered
                         : ChildOutcome::Status::kExited;
  } else {
    outcome.status = ChildOutcome::Status::kExited;
  }
  return outcome;
}

}  // namespace moca::sim
