// Machine-readable reports of simulation results.
#pragma once

#include <string>
#include <vector>

#include "sim/sweep.h"
#include "sim/system.h"

namespace moca::sim {

/// Serializes a RunResult as a JSON document (per-core, per-module and
/// aggregate metrics; migration stats when the daemon ran).
[[nodiscard]] std::string to_json(const RunResult& result);

/// Serializes one sweep job outcome: job id, label, error state and
/// host-side observability (wall-clock ms, simulated instructions/sec)
/// wrapping the simulated RunResult.
[[nodiscard]] std::string to_json(const SweepOutcome& outcome);

/// Serializes a whole sweep in submission order.
[[nodiscard]] std::string to_json(const std::vector<SweepOutcome>& outcomes);

}  // namespace moca::sim
