// Machine-readable reports of simulation results.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/sweep.h"
#include "sim/system.h"

namespace moca::sim {

/// Report schema version, the first key of every run-result object.
/// History:
///   1 (implicit) — original report, no version field
///   2 — adds "schema_version" plus the optional additive "timeseries"
///       block (epoch sampler columns/rows, see docs/observability.md)
///   3 — adds the typed "kind" + "attempts" failure fields to sweep
///       outcomes and the supervisor's sweep-report/journal envelopes
///       (docs/robustness.md)
///   4 — process-isolated sweeps: new failure kinds "crashed",
///       "oom_killed" and "interrupted"; the optional per-outcome "crash"
///       fingerprint block {"signal":N,"phase":"..."}; the optional sweep
///       envelope flag "interrupted":true on partial reports flushed by a
///       SIGINT/SIGTERM handler (docs/robustness.md)
/// Consumers should accept unknown keys; bumps are additive-only unless a
/// key's meaning changes.
inline constexpr std::uint64_t kReportSchemaVersion = 4;

/// Serializes a RunResult as a JSON document (per-core, per-module and
/// aggregate metrics; migration stats when the daemon ran; adaptive
/// reclassification stats when the engine ran; the epoch time-series when
/// sampling was on). Trace events are NOT embedded —
/// entry points write them to a separate Chrome-trace file.
[[nodiscard]] std::string to_json(const RunResult& result);

/// Serializes one sweep job outcome: job id, label, error state and
/// host-side observability (wall-clock ms, simulated instructions/sec)
/// wrapping the simulated RunResult.
[[nodiscard]] std::string to_json(const SweepOutcome& outcome);

/// Serializes a whole sweep in submission order.
[[nodiscard]] std::string to_json(const std::vector<SweepOutcome>& outcomes);

/// Deterministic serialization of one outcome: same shape as to_json minus
/// the host-side wall_ms / sim_instr_per_sec fields, so the bytes depend
/// only on simulated state. The supervisor's journal entries and merged
/// report use this form (a resumed sweep must merge byte-identically with
/// an uninterrupted one).
[[nodiscard]] std::string to_deterministic_json(const SweepOutcome& outcome);

/// Assembles the supervisor's sweep report envelope,
/// {"schema_version":N[,"interrupted":true],"outcomes":[...]}, from
/// already-serialized outcome objects (freshly produced by
/// to_deterministic_json or spliced verbatim from a resume journal).
/// `interrupted` marks a partial report flushed by a signal handler.
[[nodiscard]] std::string sweep_report_json(
    const std::vector<std::string>& outcome_jsons, bool interrupted = false);

}  // namespace moca::sim
