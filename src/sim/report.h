// Machine-readable reports of simulation results.
#pragma once

#include <string>

#include "sim/system.h"

namespace moca::sim {

/// Serializes a RunResult as a JSON document (per-core, per-module and
/// aggregate metrics; migration stats when the daemon ran).
[[nodiscard]] std::string to_json(const RunResult& result);

}  // namespace moca::sim
