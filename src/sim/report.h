// Machine-readable reports of simulation results.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/sweep.h"
#include "sim/system.h"

namespace moca::sim {

/// Report schema version, the first key of every run-result object.
/// History:
///   1 (implicit) — original report, no version field
///   2 — adds "schema_version" plus the optional additive "timeseries"
///       block (epoch sampler columns/rows, see docs/observability.md)
/// Consumers should accept unknown keys; bumps are additive-only unless a
/// key's meaning changes.
inline constexpr std::uint64_t kReportSchemaVersion = 2;

/// Serializes a RunResult as a JSON document (per-core, per-module and
/// aggregate metrics; migration stats when the daemon ran; the epoch
/// time-series when sampling was on). Trace events are NOT embedded —
/// entry points write them to a separate Chrome-trace file.
[[nodiscard]] std::string to_json(const RunResult& result);

/// Serializes one sweep job outcome: job id, label, error state and
/// host-side observability (wall-clock ms, simulated instructions/sec)
/// wrapping the simulated RunResult.
[[nodiscard]] std::string to_json(const SweepOutcome& outcome);

/// Serializes a whole sweep in submission order.
[[nodiscard]] std::string to_json(const std::vector<SweepOutcome>& outcomes);

}  // namespace moca::sim
