// One experiment-configuration surface for every entry point.
//
// The CLI, the figure harnesses and the micro-tools used to each grow their
// own ad-hoc mix of argv parsing and getenv() calls; this header replaces
// them with a single parser so a knob spelled once works everywhere and
// precedence is uniform:
//
//   command-line flag  >  MOCA_SIM_* environment variable  >  default
//
// Knobs and their two spellings:
//
//   --instr N       MOCA_SIM_INSTR     measured instructions per core
//   --warmup N      MOCA_SIM_WARMUP    warm-up instructions (0 = derived)
//   --config C      MOCA_SIM_CONFIG    heterogeneous config 1|2|3
//   --epoch N       MOCA_SIM_EPOCH     observability sampling epoch (instr)
//   --trace-out F   MOCA_SIM_TRACE     Chrome-trace output file (enables
//                                      phase tracing)
//   --jobs N        MOCA_SIM_JOBS      sweep worker-pool size (0 = auto)
//   --log           MOCA_SWEEP_LOG     per-job progress lines on stderr
//   --fault-plan P  MOCA_SIM_FAULTS    deterministic fault plan
//                                      (docs/robustness.md grammar)
//   --timeout-ms N  MOCA_SIM_TIMEOUT_MS  per-job wall-clock budget
//                                      (supervised sweeps; 0 = none)
//   --retries N     MOCA_SIM_RETRIES   attempts per job for retryable
//                                      faults (default 3)
//   --journal F     (flag only)        supervised-sweep resume journal
//   --resume F      (flag only)        resume from journal F (implies
//                                      --journal F)
//   --isolate       MOCA_SIM_ISOLATE   run each sweep cell in a forked
//                                      child (crash containment, hard
//                                      deadlines; docs/robustness.md)
//   --rlimit-as-mb N  MOCA_SIM_RLIMIT_AS_MB  RLIMIT_AS cap per isolated
//                                      child, MiB (implies --isolate)
//   --rlimit-cpu-s N  MOCA_SIM_RLIMIT_CPU_S  RLIMIT_CPU cap per isolated
//                                      child, seconds (implies --isolate)
//   --audit         MOCA_SIM_AUDIT     epoch-driven invariant auditor
//   --adaptive S    MOCA_SIM_ADAPTIVE  phase-adaptive reclassification
//                                      engine: on|off|key=value,...
//                                      (moca/adaptive.h grammar)
//
// parse_args() rejects unknown flags and missing values with CheckError so
// a typo ("--jsonx") fails loudly instead of silently swallowing the next
// token (the bug the old per-tool parsers shared).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/runner.h"
#include "sim/supervisor.h"
#include "sim/sweep.h"

namespace moca::sim {

/// An extra flag a specific entry point accepts on top of the shared set
/// (e.g. the CLI's --json or --system).
struct FlagSpec {
  std::string name;        // without the leading "--"
  bool takes_value = true; // false = bare boolean flag
};

/// Tokenized command line: positionals in order, flags as name -> value
/// (bare flags store "1").
struct ParsedArgs {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  [[nodiscard]] bool has(const std::string& f) const {
    return flags.contains(f);
  }
  [[nodiscard]] std::string get(const std::string& f,
                                std::string fallback = "") const;
  [[nodiscard]] std::uint64_t get_u64(const std::string& f,
                                      std::uint64_t fallback) const;
};

/// Tokenizes argv[start..argc) against the shared flag set plus `extra`.
/// Throws CheckError on an unknown flag or a value-taking flag at the end
/// of the line.
[[nodiscard]] ParsedArgs parse_args(int argc, char** argv, int start,
                                    const std::vector<FlagSpec>& extra = {});

/// Fully resolved experiment configuration for one entry point.
struct ExperimentOptions {
  Experiment experiment;
  /// Sweep worker-pool size; 0 lets SweepRunner resolve (MOCA_SIM_JOBS or
  /// hardware_concurrency).
  unsigned jobs = 0;
  bool sweep_log = false;
  /// Chrome-trace output path; non-empty implies
  /// experiment.observability.trace.
  std::string trace_out;
  /// True when the instruction budget came from --instr or MOCA_SIM_INSTR
  /// rather than the default — benches use this to keep their own larger
  /// default window when nothing was requested.
  bool instructions_overridden = false;
  /// Supervised-sweep settings (--timeout-ms/--retries/--journal/--resume).
  SupervisorOptions supervisor;
  /// True when any supervision knob was given explicitly; entry points use
  /// this to route sweeps through SweepSupervisor instead of SweepRunner.
  bool supervised = false;

  /// Defaults overlaid with every MOCA_SIM_* / MOCA_SWEEP_LOG variable.
  [[nodiscard]] static ExperimentOptions from_env();

  /// Overlays parsed flags (highest precedence) onto this configuration.
  void apply_flags(const ParsedArgs& args);

  /// Builds the worker pool these options describe.
  [[nodiscard]] SweepRunner make_runner() const;
};

}  // namespace moca::sim
