// Run-time observability settings and results (stat time-series + trace).
//
// ObservabilityOptions travels inside sim::Experiment so sweep jobs carry it
// unchanged through the parallel SweepRunner; ObservabilityResult travels
// inside RunResult so reports, sweeps and the CLI all see the same data.
// Everything here is derived purely from simulated state, so results are
// byte-identical for any worker count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/chrome_trace.h"
#include "common/stat_registry.h"
#include "common/time.h"

namespace moca::sim {

struct ObservabilityOptions {
  /// Epoch length of the stat sampler in committed instructions (aggregate
  /// across cores); 0 disables sampling entirely — nothing is registered,
  /// nothing is read, the hot path is untouched.
  std::uint64_t epoch_instructions = 0;
  /// Collect phase-level Chrome trace events (warmup end, epoch
  /// boundaries, migration bursts, fallback-chain spills).
  bool trace = false;
  /// Run the os::Auditor invariant pass on every observability tick and
  /// once after the measured phase (--audit / MOCA_SIM_AUDIT). Throws
  /// CheckError with a diagnostic dump on divergence.
  bool audit = false;

  [[nodiscard]] bool enabled() const {
    return epoch_instructions > 0 || trace || audit;
  }
};

/// Observability output of one run. Empty (default-constructed) when the
/// run had observability disabled.
struct ObservabilityResult {
  std::uint64_t epoch_instructions = 0;
  /// Stat paths, sorted; one column per registered probe.
  std::vector<std::string> columns;
  std::vector<StatKind> kinds;  // parallel to columns
  std::vector<EpochRow> rows;
  std::vector<ChromeTraceEvent> trace;
  /// End of the warm-up phase (0 when no warmup ran); time-series rows
  /// before this timestamp cover the warm-up window.
  TimePs warmup_end_ps = 0;

  [[nodiscard]] bool has_timeseries() const { return !columns.empty(); }
};

}  // namespace moca::sim
