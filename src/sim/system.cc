#include "sim/system.h"

#include <algorithm>

#include "common/check.h"
#include "common/stats.h"

namespace moca::sim {

double RunResult::memory_edp() const {
  return memory_energy_j * ps_to_seconds(total_mem_access_time);
}

double RunResult::system_edp() const {
  return system_energy_j() * ps_to_seconds(exec_time);
}

double RunResult::system_throughput() const {
  return safe_div(static_cast<double>(total_instructions),
                  ps_to_seconds(exec_time));
}

System::System(const MemSystemConfig& memsys,
               std::unique_ptr<os::AllocationPolicy> policy,
               std::vector<AppInstance> apps, SystemOptions options)
    : memsys_(memsys),
      options_(options),
      apps_(std::move(apps)),
      policy_(std::move(policy)),
      profiler_(registry_) {
  MOCA_CHECK(policy_ != nullptr);
  MOCA_CHECK(!apps_.empty());
  MOCA_CHECK(!memsys_.modules.empty());

  // Slot buffers rotate through the wheel via swap, so without a floor a
  // cold tiny buffer keeps landing where a multi-event batch arrives and
  // the run pays hundreds of thousands of small grow-reallocs (~2.5 MiB
  // once here buys their elimination; capacity only, no behavior change).
  events_.reserve_slot_capacity(/*level0_events=*/8, /*level1_events=*/8);

  if (!options_.faults.empty()) {
    injector_ = std::make_unique<FaultInjector>(
        options_.faults, options_.fault_seed, options_.fault_attempt,
        options_.fault_cell);
    injector_->set_clock([this] { return events_.now(); });
  }

  for (const ModuleSpec& spec : memsys_.modules) {
    dram::DeviceConfig device = dram::make_device(spec.kind);
    if (spec.interleave_granule_bytes != 0) {
      device.geometry.interleave_granule_bytes =
          spec.interleave_granule_bytes;
    }
    modules_.push_back(std::make_unique<dram::MemoryModule>(
        std::move(device), spec.capacity_bytes, spec.attached_channels,
        events_, spec.name));
    modules_.back()->set_fault_injector(injector_.get());
    phys_.add_module(modules_.back().get());
  }
  phys_.set_fault_injector(injector_.get());
  os_ = std::make_unique<os::Os>(phys_, *policy_);

  if (options_.migration.has_value()) {
    migrator_ = std::make_unique<os::PageMigrator>(*os_,
                                                   *options_.migration);
    migrator_->set_copy_hook(
        [this](os::PhysAddr old_page, os::PhysAddr new_page) {
          // Copy traffic: read every line of the old frame, write every
          // line of the new one (fire-and-forget DRAM requests).
          for (std::uint64_t off = 0; off < kPageBytes; off += kLineBytes) {
            const os::PhysicalMemory::Location src =
                phys_.locate(old_page + off);
            modules_[src.module_index]->access(src.local_addr, false,
                                               nullptr);
            const os::PhysicalMemory::Location dst =
                phys_.locate(new_page + off);
            modules_[dst.module_index]->access(dst.local_addr, true,
                                               nullptr);
          }
        });
    migrator_->set_shootdown_hook([this] {
      for (PerCore& pc : cores_) pc.core->flush_tlb();
    });
    // Periodic, self-rescheduling migration epochs.
    struct Epoch {
      System* system;
      TimePs period;
      void operator()() const {
        system->migrator_->run_epoch();
        system->events_.schedule(system->events_.now() + period, *this);
      }
    };
    const TimePs period = options_.migration->epoch_cycles * kCpuCyclePs;
    events_.schedule(period, Epoch{this, period});
  }

  if (options_.adaptive.has_value()) {
    adaptive_ = std::make_unique<core::AdaptiveEngine>(*os_, registry_,
                                                       *options_.adaptive);
    adaptive_->set_copy_hook(
        [this](os::PhysAddr old_page, os::PhysAddr new_page) {
          // Same copy-traffic model as the migration daemon: read every
          // line of the old frame, write every line of the new one.
          for (std::uint64_t off = 0; off < kPageBytes; off += kLineBytes) {
            const os::PhysicalMemory::Location src =
                phys_.locate(old_page + off);
            modules_[src.module_index]->access(src.local_addr, false,
                                               nullptr);
            const os::PhysicalMemory::Location dst =
                phys_.locate(new_page + off);
            modules_[dst.module_index]->access(dst.local_addr, true,
                                               nullptr);
          }
        });
    adaptive_->set_shootdown_hook([this] {
      for (PerCore& pc : cores_) pc.core->flush_tlb();
    });
    adaptive_->set_instruction_source([this](os::ProcessId pid) {
      // Process pids are created in core order, so pid indexes cores_.
      return cores_[pid].core->stats().committed;
    });
    struct AdaptiveEpoch {
      System* system;
      TimePs period;
      void operator()() const {
        system->adaptive_->run_epoch();
        system->events_.schedule(system->events_.now() + period, *this);
      }
    };
    const TimePs period =
        options_.adaptive->epoch_cycles * kCpuCyclePs;
    events_.schedule(period, AdaptiveEpoch{this, period});
  }

  for (std::size_t i = 0; i < apps_.size(); ++i) {
    AppInstance& app = apps_[i];
    PerCore pc;
    pc.pid = os_->create_process();
    if (app.classes.has_value()) {
      os_->set_app_class(pc.pid, app.classes->app_class);
    }

    pc.allocator = std::make_unique<core::MocaAllocator>(
        os_->address_space(pc.pid), registry_,
        app.classes.has_value() ? &*app.classes : nullptr);
    pc.allocator->set_fault_injector(injector_.get());
    pc.stream = std::make_unique<workload::AppStream>(
        app.spec, app.scale, app.seed, *pc.allocator,
        os_->address_space(pc.pid));

    pc.hierarchy = std::make_unique<cache::MemHierarchy>(
        options_.l1, options_.l2, events_,
        [this](std::uint64_t paddr, bool is_write,
               std::function<void(TimePs)> on_complete) {
          const os::PhysicalMemory::Location loc = phys_.locate(paddr);
          modules_[loc.module_index]->access(loc.local_addr, is_write,
                                             std::move(on_complete));
        });
    if (options_.prefetch_degree > 0) {
      pc.hierarchy->enable_next_line_prefetch(options_.prefetch_degree);
    }
    if (options_.enable_profiling || migrator_ != nullptr ||
        adaptive_ != nullptr) {
      pc.hierarchy->set_llc_miss_observer(
          [this](const cache::AccessContext& ctx) {
            if (options_.enable_profiling) profiler_.on_llc_miss(ctx);
            if (migrator_ != nullptr) {
              migrator_->record_miss(ctx.process, ctx.vaddr);
            }
            if (adaptive_ != nullptr) {
              adaptive_->record_miss(ctx.process, ctx.object, ctx.is_load);
            }
          });
    }

    pc.core = std::make_unique<cpu::Core>(
        static_cast<std::uint32_t>(i), options_.core_params, *pc.stream,
        *pc.hierarchy, *os_, pc.pid, events_);
    pc.core->set_budget(options_.instructions_per_core);
    if (options_.enable_profiling || adaptive_ != nullptr) {
      pc.core->set_stall_observer(
          [](void* sys, std::uint64_t pid, std::uint64_t object) {
            System* system = static_cast<System*>(sys);
            if (system->options_.enable_profiling) {
              system->profiler_.on_head_stall(
                  static_cast<os::ProcessId>(pid), object);
            }
            if (system->adaptive_ != nullptr) {
              system->adaptive_->record_stall(
                  static_cast<os::ProcessId>(pid), object);
            }
          },
          this, pc.pid);
    }
    cores_.push_back(std::move(pc));
  }
  pretouch_pages();
  if (options_.observability.enabled()) register_observability();
}

std::uint64_t System::total_committed() const {
  std::uint64_t total = 0;
  for (const PerCore& pc : cores_) total += pc.core->stats().committed;
  return total;
}

void System::register_observability() {
  if (options_.observability.audit) {
    auditor_ = std::make_unique<os::Auditor>(
        *os_, [this] { return registry_.live_ranges(); });
  }
  if (options_.observability.epoch_instructions > 0) {
    for (std::size_t i = 0; i < cores_.size(); ++i) {
      const std::string prefix = "core" + std::to_string(i);
      cores_[i].core->register_stats(stat_registry_, prefix);
      cores_[i].hierarchy->register_stats(stat_registry_, prefix + "/cache");
      // Cross-component derived metrics live here because no single
      // component sees both operands.
      stat_registry_.ratio(prefix + "/ipc", prefix + "/instructions",
                           prefix + "/cycles");
      stat_registry_.ratio(prefix + "/mpki", prefix + "/cache/llc_misses",
                           prefix + "/instructions", 1000.0);
    }
    for (std::uint32_t m = 0; m < phys_.module_count(); ++m) {
      const dram::MemoryModule& module = phys_.module(m);
      const std::string prefix = "mem/" + module.name();
      module.register_stats(stat_registry_, prefix);
      stat_registry_.gauge(prefix + "/frames_used", [this, m] {
        return static_cast<double>(phys_.allocator(m).used_frames());
      });
    }
    os_->register_stats(stat_registry_, "os");
    registry_.register_stats(stat_registry_, "alloc");
    if (migrator_ != nullptr) {
      migrator_->register_stats(stat_registry_, "migration");
    }
    if (adaptive_ != nullptr) {
      adaptive_->register_stats(stat_registry_, "moca/adaptive");
    }
    if (injector_ != nullptr) {
      injector_->register_stats(stat_registry_, "faults");
    }
    if (auditor_ != nullptr) {
      auditor_->register_stats(stat_registry_, "os/audit");
    }
    series_ = std::make_unique<EpochSeries>(stat_registry_);
    next_epoch_boundary_ = options_.observability.epoch_instructions;
  }

  // Periodic, self-rescheduling observability tick (same pattern as the
  // migration epochs). The quantum trades boundary precision against event
  // count: a quarter epoch while sampling means a boundary fires at most
  // ~N/4 instructions late at IPC 1; trace-only runs need just a coarse
  // pulse to detect migration bursts and fallback spills.
  struct Tick {
    System* system;
    TimePs period;
    void operator()() const {
      system->epoch_tick();
      if (!system->sampling_stopped_) {
        system->events_.schedule(system->events_.now() + period, *this);
      }
    }
  };
  const std::uint64_t n = options_.observability.epoch_instructions;
  const Cycle quantum =
      n > 0 ? std::max<Cycle>(1000, static_cast<Cycle>(n / 4)) : 10'000;
  const TimePs period = quantum * kCpuCyclePs;
  events_.schedule(period, Tick{this, period});
}

void System::epoch_tick() {
  if (sampling_stopped_) return;
  if (auditor_ != nullptr) auditor_->run_audit();
  if (options_.observability.trace) {
    const os::OsStats& os_stats = os_->stats();
    const std::uint64_t fallbacks =
        os_stats.fallback_allocations + os_stats.last_resort_allocations;
    if (fallbacks > traced_fallbacks_) {
      trace_.instant("fallback_spill", "os", events_.now(),
                     {{"spills", fallbacks - traced_fallbacks_}});
      traced_fallbacks_ = fallbacks;
    }
    if (migrator_ != nullptr) {
      const os::MigrationStats& ms = migrator_->stats();
      const std::uint64_t moves = ms.promotions + ms.demotions;
      if (moves > traced_migrations_) {
        trace_.instant("migration_burst", "migration", events_.now(),
                       {{"promotions", ms.promotions},
                        {"demotions", ms.demotions}});
        traced_migrations_ = moves;
      }
    }
    if (adaptive_ != nullptr) {
      const core::AdaptiveStats& as = adaptive_->stats();
      if (as.reclassifications > traced_reclassifications_) {
        trace_.instant("adaptive_burst", "adaptive", events_.now(),
                       {{"promotions", as.object_promotions},
                        {"demotions", as.object_demotions},
                        {"moved_pages", as.moved_pages}});
        traced_reclassifications_ = as.reclassifications;
      }
    }
  }
  if (series_ != nullptr) {
    const std::uint64_t total = total_committed();
    if (total >= next_epoch_boundary_) {
      series_->sample(epoch_index_, events_.now(), total);
      if (options_.observability.trace) {
        trace_.instant("epoch", "sampler", events_.now(),
                       {{"epoch", epoch_index_}, {"instructions", total}});
      }
      ++epoch_index_;
      const std::uint64_t n = options_.observability.epoch_instructions;
      // Skip boundaries the quantum jumped over instead of emitting a
      // train of all-zero rows.
      next_epoch_boundary_ = total - total % n + n;
    }
  }
}

void System::pretouch_pages() {
  // Applications touch their memory in allocation/program order during
  // startup (reading inputs, building structures) — this happens inside the
  // paper's fast-forward phase, before the measured window, and it is what
  // fixes each page's physical placement ("the first one identified during
  // runtime", Sec. VI-A). Processes start concurrently, so their first
  // touches interleave: we round-robin one page per process.
  std::vector<std::vector<os::VirtAddr>> pages(cores_.size());
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    const workload::AppSpec& spec = apps_[i].spec;
    for (std::uint64_t off = 0; off < spec.stack_bytes; off += kPageBytes) {
      pages[i].push_back(os::kStackBase + off);
    }
    for (std::uint64_t off = 0; off < spec.code_bytes; off += kPageBytes) {
      pages[i].push_back(os::kCodeBase + off);
    }
  }
  for (const core::ObjectInstance& inst : registry_.all()) {
    for (std::uint64_t off = 0; off < inst.bytes; off += kPageBytes) {
      pages[inst.pid].push_back(inst.base + off);
    }
  }
  bool remaining = true;
  std::vector<std::size_t> cursor(cores_.size(), 0);
  while (remaining) {
    remaining = false;
    for (std::size_t i = 0; i < cores_.size(); ++i) {
      if (cursor[i] < pages[i].size()) {
        (void)os_->translate(cores_[i].pid, pages[i][cursor[i]++]);
        remaining = true;
      }
    }
  }
}

System::~System() = default;

RunResult System::run() {
  // Transient whole-job faults fire before any simulation work so the
  // supervisor's retry replays the attempt from scratch.
  if (injector_ != nullptr) injector_->maybe_fail_job();
  // Generous deadlock guard: no workload should run below IPC 0.005.
  const Cycle cycle_limit =
      static_cast<Cycle>(options_.instructions_per_core +
                         options_.warmup_instructions) *
          200 +
      1'000'000;
  Cycle cycle = 0;
  std::vector<Cycle> absolute_finish(cores_.size(), 0);

  const auto run_phase = [&](auto budget_of) {
    for (std::size_t i = 0; i < cores_.size(); ++i) {
      cores_[i].core->set_budget(budget_of(i));
    }
    // Track the still-running cores by index: a finished core drops out
    // once instead of being re-polled every cycle (stepping a done core is
    // a no-op, so skipping it is behavior-identical). The per-cycle
    // run_until stays — with nothing due it is a single cached comparison
    // in the scheduler.
    std::vector<std::size_t> running;
    for (std::size_t i = 0; i < cores_.size(); ++i) {
      if (!cores_[i].core->done()) {
        running.push_back(i);
      } else if (absolute_finish[i] == 0) {
        absolute_finish[i] = cycle;
      }
    }
    while (!running.empty()) {
      // Cooperative cancellation + liveness heartbeat (supervised
      // wall-clock timeout / process isolation). The mask keeps both off
      // the per-cycle fast path; 4096 cycles is ~1.3 us simulated, far
      // below any meaningful timeout granularity.
      if ((cycle & 4095) == 0) {
        if (options_.heartbeat != nullptr) {
          options_.heartbeat->fetch_add(1, std::memory_order_relaxed);
        }
        if (options_.cancel != nullptr &&
            options_.cancel->load(std::memory_order_relaxed)) {
          throw CancelledError("simulation cancelled at cycle " +
                               std::to_string(cycle) +
                               " (supervised timeout)");
        }
      }
      events_.run_until(cycle_to_ps(cycle));
      for (std::size_t r = 0; r < running.size();) {
        const std::size_t i = running[r];
        cores_[i].core->step();
        if (cores_[i].core->done()) {
          // The previous loop shape observed a finish at the top of the
          // next iteration — one cycle after the finishing step.
          if (absolute_finish[i] == 0) absolute_finish[i] = cycle + 1;
          running.erase(running.begin() + static_cast<std::ptrdiff_t>(r));
        } else {
          ++r;
        }
      }
      ++cycle;
      MOCA_CHECK_MSG(cycle < cycle_limit,
                     "simulation exceeded cycle limit (deadlock?)");
    }
  };

  // Warm-up phase: run, then snapshot every counter and discard it.
  Cycle warmup_end = 0;
  std::vector<cpu::CoreStats> core_base(cores_.size());
  std::vector<cache::HierarchyStats> hier_base(cores_.size());
  std::vector<dram::ChannelStats> module_base(phys_.module_count());
  if (options_.warmup_instructions > 0) {
    run_phase([&](std::size_t) { return options_.warmup_instructions; });
    warmup_end = cycle;
    for (std::size_t i = 0; i < cores_.size(); ++i) {
      core_base[i] = cores_[i].core->stats();
      hier_base[i] = cores_[i].hierarchy->stats();
    }
    for (std::uint32_t m = 0; m < phys_.module_count(); ++m) {
      module_base[m] = phys_.module(m).stats();
    }
    profiler_.reset();
    std::fill(absolute_finish.begin(), absolute_finish.end(), Cycle{0});
    if (options_.observability.trace) {
      trace_.instant("warmup_end", "phase", cycle_to_ps(warmup_end));
    }
  }

  // Measured phase.
  run_phase([&](std::size_t i) {
    return cores_[i].core->stats().committed +
           options_.instructions_per_core;
  });
  const Cycle measured_end = cycle;
  if (series_ != nullptr) {
    // Close the last (possibly partial) epoch so even runs shorter than
    // one epoch produce a non-empty time-series.
    const std::uint64_t total = total_committed();
    if (series_->rows().empty() ||
        series_->rows().back().instructions < total) {
      series_->sample(epoch_index_++, cycle_to_ps(measured_end), total);
    }
  }
  if (options_.observability.trace) {
    trace_.complete("measured", "phase", cycle_to_ps(warmup_end),
                    cycle_to_ps(measured_end - warmup_end));
  }
  // Stop sampling before the drain: the tick already scheduled fires once
  // more, sees the flag and does not reschedule, so the drain window adds
  // no rows or events.
  sampling_stopped_ = true;
  // Drain in-flight memory traffic so module counters are complete; the
  // drain happens after every finish timestamp, so no metric includes it.
  events_.run_until(cycle_to_ps(cycle) + 50'000'000);
  // Final audit over the settled end state (mappings, free lists and the
  // object LUT are all quiescent here).
  if (auditor_ != nullptr) auditor_->run_audit();

  RunResult result;
  result.memsys_name = memsys_.name;
  result.policy_name = policy_->name();
  result.os_stats = os_->stats();
  if (migrator_ != nullptr) result.migration = migrator_->stats();
  if (adaptive_ != nullptr) result.adaptive = adaptive_->stats();

  for (std::size_t i = 0; i < cores_.size(); ++i) {
    PerCore& pc = cores_[i];
    CoreResult cr;
    cr.app_name = apps_[pc.pid].spec.name;
    cr.core = pc.core->stats();
    cr.core -= core_base[i];
    cr.hierarchy = pc.hierarchy->stats();
    cr.hierarchy -= hier_base[i];
    cr.profile =
        profiler_.finalize(cr.app_name, pc.pid, cr.core.committed);
    cr.finish_time = cycle_to_ps(absolute_finish[i] - warmup_end);
    result.exec_time = std::max(result.exec_time, cr.finish_time);
    result.total_instructions += cr.core.committed;
    result.total_llc_misses += cr.hierarchy.llc_misses;
    result.cores.push_back(std::move(cr));
  }

  for (std::uint32_t m = 0; m < phys_.module_count(); ++m) {
    const dram::MemoryModule& module = phys_.module(m);
    ModuleResult mr;
    mr.name = module.name();
    mr.kind = module.kind();
    mr.capacity_bytes = module.capacity_bytes();
    mr.stats = module.stats();
    mr.stats -= module_base[m];
    mr.energy_j = power::dram_energy_joules(
        power::dram_power_params(module.kind()), mr.stats,
        module.capacity_bytes(), result.exec_time);
    mr.frames_used = phys_.allocator(m).used_frames();
    result.total_mem_access_time += mr.stats.total_access_time_ps();
    result.memory_energy_j += mr.energy_j;
    result.modules.push_back(std::move(mr));
  }

  for (const CoreResult& cr : result.cores) {
    power::CoreActivity activity;
    activity.busy_time = cr.finish_time;
    activity.l1_accesses = cr.hierarchy.l1_accesses;
    activity.l2_accesses = cr.hierarchy.l2_accesses;
    result.core_energy_j +=
        power::core_energy_joules(options_.core_power, activity);
  }

  if (options_.observability.enabled()) {
    result.observability.epoch_instructions =
        options_.observability.epoch_instructions;
    result.observability.warmup_end_ps = cycle_to_ps(warmup_end);
    if (series_ != nullptr) {
      result.observability.columns = series_->columns();
      result.observability.kinds = series_->kinds();
      result.observability.rows = series_->take_rows();
    }
    result.observability.trace = trace_.take();
  }
  return result;
}

}  // namespace moca::sim
