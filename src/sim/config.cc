#include "sim/config.h"

#include "common/check.h"

namespace moca::sim {

namespace {
constexpr std::uint64_t scaled_mib(std::uint64_t paper_mib) {
  return paper_mib * MiB / kCapacityScale;
}
}  // namespace

MemSystemConfig homogeneous(dram::MemKind kind) {
  // Short names follow the paper's figure legends (Homogen-LP, Homogen-RL).
  const char* short_name = "";
  switch (kind) {
    case dram::MemKind::kDdr3:
      short_name = "DDR3";
      break;
    case dram::MemKind::kDdr4:
      short_name = "DDR4";
      break;
    case dram::MemKind::kLpddr2:
      short_name = "LP";
      break;
    case dram::MemKind::kRldram3:
      short_name = "RL";
      break;
    case dram::MemKind::kHbm:
      short_name = "HBM";
      break;
  }
  MemSystemConfig c;
  c.name = std::string("Homogen-") + short_name;
  c.modules.push_back(ModuleSpec{kind, scaled_mib(2048), 4,
                                 dram::to_string(kind) + "-2GB"});
  return c;
}

MemSystemConfig knl_like() {
  MemSystemConfig c;
  c.name = "KNL-like";
  c.modules = {
      {dram::MemKind::kDdr4, scaled_mib(1536), 3, "DDR4-1.5GB"},
      {dram::MemKind::kHbm, scaled_mib(512), 1, "HBM-512MB"},
  };
  return c;
}

MemSystemConfig heterogeneous(int config_number) {
  using dram::MemKind;
  MemSystemConfig c;
  switch (config_number) {
    case 1:
      c.name = "Hetero-config1";
      c.modules = {
          {MemKind::kRldram3, scaled_mib(256), 1, "RL-256MB"},
          {MemKind::kHbm, scaled_mib(768), 1, "HBM-768MB"},
          {MemKind::kLpddr2, scaled_mib(512), 1, "LP-512MB-a"},
          {MemKind::kLpddr2, scaled_mib(512), 1, "LP-512MB-b"},
      };
      return c;
    case 2:
      c.name = "Hetero-config2";
      c.modules = {
          {MemKind::kRldram3, scaled_mib(512), 1, "RL-512MB"},
          {MemKind::kHbm, scaled_mib(512), 1, "HBM-512MB"},
          {MemKind::kLpddr2, scaled_mib(512), 1, "LP-512MB-a"},
          {MemKind::kLpddr2, scaled_mib(512), 1, "LP-512MB-b"},
      };
      return c;
    case 3:
      c.name = "Hetero-config3";
      c.modules = {
          {MemKind::kRldram3, scaled_mib(768), 1, "RL-768MB"},
          {MemKind::kHbm, scaled_mib(768), 1, "HBM-768MB"},
          {MemKind::kLpddr2, scaled_mib(512), 1, "LP-512MB"},
      };
      return c;
    default:
      MOCA_CHECK_MSG(false, "unknown heterogeneous config " << config_number);
      return c;
  }
}

}  // namespace moca::sim
